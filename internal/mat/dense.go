// Package mat implements the dense linear algebra needed by the
// randomization/reconstruction library: matrix arithmetic, LU and Cholesky
// factorizations, Gram–Schmidt orthonormalization, and symmetric
// eigendecomposition (Householder + implicit-shift QL, with a cyclic
// Jacobi fallback for cross-validation).
//
// The package is self-contained (standard library only) and sized for the
// problem scales in Huang, Du & Chen (SIGMOD 2005): matrices up to a few
// hundred columns. Row-major storage is used throughout. Dense products
// (Mul/MulInto, the transpose-free MulABTInto/MulATBInto, and the
// symmetric rank-k SymRankKInto) share one blocked kernel layer — kcBlock
// reduction slabs and packed 2×4 register tiles, see gemm.go — that fans
// large products out across goroutines with results bit-identical to the
// serial kernel at any GOMAXPROCS. A Workspace arena recycles scratch
// buffers for callers on steady-state hot loops.
package mat

import (
	"fmt"
	"math"
	"strings"
)

// Dense is a row-major dense matrix of float64 values.
//
// The zero value is an empty 0×0 matrix. Use New, NewFromRows, Identity,
// or Zeros to construct matrices with a shape.
type Dense struct {
	rows, cols int
	data       []float64 // len == rows*cols, row-major
}

// New returns an r×c matrix backed by data, which must have length r*c.
// The matrix takes ownership of data (no copy is made).
func New(r, c int, data []float64) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", r, c))
	}
	if data == nil {
		data = make([]float64, r*c)
	}
	if len(data) != r*c {
		panic(fmt.Sprintf("mat: data length %d does not match %dx%d", len(data), r, c))
	}
	return &Dense{rows: r, cols: c, data: data}
}

// Zeros returns an r×c matrix of zeros.
func Zeros(r, c int) *Dense { return New(r, c, nil) }

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := Zeros(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Diag returns a square diagonal matrix whose diagonal is d.
func Diag(d []float64) *Dense {
	n := len(d)
	m := Zeros(n, n)
	for i, v := range d {
		m.Set(i, i, v)
	}
	return m
}

// NewFromRows builds a matrix from a slice of equal-length rows.
// It copies the input.
func NewFromRows(rows [][]float64) *Dense {
	r := len(rows)
	if r == 0 {
		return Zeros(0, 0)
	}
	c := len(rows[0])
	m := Zeros(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("mat: ragged rows: row %d has %d entries, want %d", i, len(row), c))
		}
		copy(m.data[i*c:(i+1)*c], row)
	}
	return m
}

// Dims returns the number of rows and columns.
func (m *Dense) Dims() (r, c int) { return m.rows, m.cols }

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 {
	m.boundsCheck(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns v to the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) {
	m.boundsCheck(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Dense) boundsCheck(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range for %dx%d matrix", i, j, m.rows, m.cols))
	}
}

// Row returns a copy of row i.
func (m *Dense) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("mat: row %d out of range for %dx%d matrix", i, m.rows, m.cols))
	}
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// RawRow returns row i as a slice aliasing the matrix storage.
// Mutating the returned slice mutates the matrix.
func (m *Dense) RawRow(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("mat: row %d out of range for %dx%d matrix", i, m.rows, m.cols))
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// Col returns a copy of column j.
func (m *Dense) Col(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: col %d out of range for %dx%d matrix", j, m.rows, m.cols))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// SetRow copies v into row i. len(v) must equal Cols().
func (m *Dense) SetRow(i int, v []float64) {
	if len(v) != m.cols {
		panic(fmt.Sprintf("mat: SetRow length %d, want %d", len(v), m.cols))
	}
	copy(m.data[i*m.cols:(i+1)*m.cols], v)
}

// SetCol copies v into column j. len(v) must equal Rows().
func (m *Dense) SetCol(j int, v []float64) {
	if len(v) != m.rows {
		panic(fmt.Sprintf("mat: SetCol length %d, want %d", len(v), m.rows))
	}
	for i := 0; i < m.rows; i++ {
		m.data[i*m.cols+j] = v[i]
	}
}

// Clone returns a deep copy of the matrix.
func (m *Dense) Clone() *Dense {
	d := make([]float64, len(m.data))
	copy(d, m.data)
	return &Dense{rows: m.rows, cols: m.cols, data: d}
}

// Raw returns the underlying row-major storage. Mutations are visible to
// the matrix. Intended for tight loops in this module's numeric kernels.
func (m *Dense) Raw() []float64 { return m.data }

// AppendRows appends a copy of b's rows to m, growing the backing storage
// with amortized doubling. An empty 0×0 matrix adopts b's column count on
// the first append, so the zero value works as a row accumulator; any
// other shape requires matching column counts.
func (m *Dense) AppendRows(b *Dense) {
	if m.rows == 0 && m.cols == 0 {
		m.cols = b.cols
	}
	if b.cols != m.cols {
		panic(fmt.Sprintf("mat: AppendRows of %d-column rows to %d-column matrix", b.cols, m.cols))
	}
	m.data = append(m.data, b.data...)
	m.rows += b.rows
}

// Equal reports whether m and b have the same shape and identical entries.
func (m *Dense) Equal(b *Dense) bool {
	if m.rows != b.rows || m.cols != b.cols {
		return false
	}
	for i, v := range m.data {
		if v != b.data[i] {
			return false
		}
	}
	return true
}

// EqualApprox reports whether m and b have the same shape and all entries
// within tol of each other.
func (m *Dense) EqualApprox(b *Dense, tol float64) bool {
	if m.rows != b.rows || m.cols != b.cols {
		return false
	}
	for i, v := range m.data {
		if math.Abs(v-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// IsSymmetric reports whether m is square and symmetric to within tol.
func (m *Dense) IsSymmetric(tol float64) bool {
	if m.rows != m.cols {
		return false
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// Slice returns a copy of the submatrix with rows [r0,r1) and cols [c0,c1).
func (m *Dense) Slice(r0, r1, c0, c1 int) *Dense {
	if r0 < 0 || r1 > m.rows || c0 < 0 || c1 > m.cols || r0 > r1 || c0 > c1 {
		panic(fmt.Sprintf("mat: invalid slice [%d:%d, %d:%d] of %dx%d", r0, r1, c0, c1, m.rows, m.cols))
	}
	out := Zeros(r1-r0, c1-c0)
	for i := r0; i < r1; i++ {
		copy(out.data[(i-r0)*out.cols:(i-r0+1)*out.cols], m.data[i*m.cols+c0:i*m.cols+c1])
	}
	return out
}

// ColsSlice returns a copy of the matrix restricted to columns [0, k).
func (m *Dense) ColsSlice(k int) *Dense { return m.Slice(0, m.rows, 0, k) }

// String renders the matrix for debugging; large matrices are elided.
func (m *Dense) String() string {
	const maxShow = 8
	var b strings.Builder
	fmt.Fprintf(&b, "Dense(%dx%d)[", m.rows, m.cols)
	for i := 0; i < m.rows && i < maxShow; i++ {
		if i > 0 {
			b.WriteString("; ")
		}
		for j := 0; j < m.cols && j < maxShow; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%.4g", m.At(i, j))
		}
		if m.cols > maxShow {
			b.WriteString(" …")
		}
	}
	if m.rows > maxShow {
		b.WriteString("; …")
	}
	b.WriteByte(']')
	return b.String()
}
