package mat

import (
	"runtime"
	"sync"
)

// kernelTokens bounds the number of extra goroutines the data-parallel
// kernels may have in flight process-wide. Kernels often run underneath
// an already-parallel caller (the experiment trial pool); without a
// global budget, W trials × GOMAXPROCS kernel goroutines would
// oversubscribe the machine. A worker that finds no token free simply
// runs its chunk inline — chunk boundaries never change, so results are
// unaffected.
var kernelTokens = make(chan struct{}, runtime.GOMAXPROCS(0))

// parallelRows splits [0, rows) into one contiguous chunk per worker and
// runs work(r0, r1) on each, inline or on a goroutine as the token
// budget allows. Chunk boundaries depend only on rows and the worker
// count, and callers write disjoint row ranges, so results are
// deterministic; callers that need bit-identical output at any
// parallelism (the GEMM kernels) additionally keep each output
// element's arithmetic entirely within one chunk.
func parallelRows(rows, workers int, work func(r0, r1 int)) {
	if workers > rows {
		workers = rows
	}
	if workers <= 1 {
		work(0, rows)
		return
	}
	bounds := make([]int, workers+1)
	for k := 0; k <= workers; k++ {
		bounds[k] = k * rows / workers
	}
	parallelBounds(bounds, work)
}

// parallelBounds runs work(bounds[k], bounds[k+1]) for every consecutive
// boundary pair, inline or on a goroutine as the token budget allows.
// It is the spawn engine under parallelRows and the weighted splits
// (SymRankKUpperInto's triangular partition); the caller fixes the
// boundaries, so which goroutine runs a segment never affects results.
func parallelBounds(bounds []int, work func(r0, r1 int)) {
	var wg sync.WaitGroup
	for k := 1; k+1 < len(bounds); k++ {
		r0, r1 := bounds[k], bounds[k+1]
		if r0 == r1 {
			continue
		}
		select {
		case kernelTokens <- struct{}{}:
			wg.Add(1)
			go func(r0, r1 int) {
				defer func() {
					<-kernelTokens
					wg.Done()
				}()
				work(r0, r1)
			}(r0, r1)
		default:
			work(r0, r1)
		}
	}
	work(bounds[0], bounds[1])
	wg.Wait()
}

// maxWorkers is the fan-out ceiling for the data-parallel kernels.
func maxWorkers() int { return runtime.GOMAXPROCS(0) }
