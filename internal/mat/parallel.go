package mat

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// mulParallelMinFlops is the a.rows·a.cols·b.cols size above which Mul
// fans out across goroutines. Below it the fork/join overhead exceeds
// the arithmetic; the threshold corresponds to roughly a 100×100·100×100
// product, well under the n=1000, m=100 experiment scales.
const mulParallelMinFlops = 1 << 20

// kernelTokens bounds the number of extra goroutines the data-parallel
// kernels may have in flight process-wide. Kernels often run underneath
// an already-parallel caller (the experiment trial pool); without a
// global budget, W trials × GOMAXPROCS kernel goroutines would
// oversubscribe the machine. A worker that finds no token free simply
// runs its chunk inline — chunk boundaries never change, so results are
// unaffected.
var kernelTokens = make(chan struct{}, runtime.GOMAXPROCS(0))

// parallelRows splits [0, rows) into one contiguous chunk per worker and
// runs work(r0, r1) on each, inline or on a goroutine as the token
// budget allows. Chunk boundaries depend only on rows and the worker
// count, and callers write disjoint row ranges, so results are
// deterministic; callers that need bit-identical output at any
// parallelism (Mul, CovarianceMatrix) additionally keep each output
// element's arithmetic entirely within one chunk.
func parallelRows(rows, workers int, work func(r0, r1 int)) {
	if workers > rows {
		workers = rows
	}
	if workers <= 1 {
		work(0, rows)
		return
	}
	var wg sync.WaitGroup
	for k := 1; k < workers; k++ {
		r0 := k * rows / workers
		r1 := (k + 1) * rows / workers
		select {
		case kernelTokens <- struct{}{}:
			wg.Add(1)
			go func(r0, r1 int) {
				defer func() {
					<-kernelTokens
					wg.Done()
				}()
				work(r0, r1)
			}(r0, r1)
		default:
			work(r0, r1)
		}
	}
	work(0, rows/workers)
	wg.Wait()
}

// ParallelChunks runs work(c) for every chunk index in [0, chunks),
// spreading chunks over at most workers concurrent executors (clamped to
// the same process-wide token budget as parallelRows). It is the shared
// engine for deterministic chunked reductions: the caller gives each
// chunk its own output slot and reduces in chunk order afterwards, so
// the result is independent of how many executors ran.
func ParallelChunks(chunks, workers int, work func(c int)) {
	if workers > chunks {
		workers = chunks
	}
	if workers <= 1 {
		for c := 0; c < chunks; c++ {
			work(c)
		}
		return
	}
	var next int64 = -1
	run := func() {
		for {
			c := int(atomic.AddInt64(&next, 1))
			if c >= chunks {
				return
			}
			work(c)
		}
	}
	var wg sync.WaitGroup
	for k := 1; k < workers; k++ {
		select {
		case kernelTokens <- struct{}{}:
			wg.Add(1)
			go func() {
				defer func() {
					<-kernelTokens
					wg.Done()
				}()
				run()
			}()
		default:
		}
	}
	run()
	wg.Wait()
}

// maxWorkers is the fan-out ceiling for the data-parallel kernels.
func maxWorkers() int { return runtime.GOMAXPROCS(0) }
