package mat

import (
	"testing"
)

// TestWorkspaceReuse verifies that a Get/Reset cycle with stable shapes
// settles into a fixed buffer set (no growth) and always hands back
// zeroed storage.
func TestWorkspaceReuse(t *testing.T) {
	ws := NewWorkspace()
	var first *Dense
	for cycle := 0; cycle < 5; cycle++ {
		ws.Reset()
		a := ws.Get(7, 3)
		v := ws.Floats(11)
		for i := range a.data {
			if a.data[i] != 0 {
				t.Fatalf("cycle %d: Get returned dirty storage", cycle)
			}
			a.data[i] = 99
		}
		for i := range v {
			if v[i] != 0 {
				t.Fatalf("cycle %d: Floats returned dirty storage", cycle)
			}
			v[i] = -1
		}
		if cycle == 0 {
			first = a
		}
	}
	if len(ws.bufs) != 2 {
		t.Fatalf("workspace grew to %d buffers, want 2", len(ws.bufs))
	}
	if r, c := first.Dims(); r != 7 || c != 3 {
		t.Fatalf("pooled header reshaped to %dx%d", r, c)
	}
}

// TestWorkspaceDistinctBuffers ensures two live Gets never alias.
func TestWorkspaceDistinctBuffers(t *testing.T) {
	ws := NewWorkspace()
	a := ws.Get(4, 4)
	b := ws.Get(4, 4)
	a.Set(0, 0, 1)
	if b.At(0, 0) != 0 {
		t.Fatal("two live workspace matrices share storage")
	}
	s := ws.Floats(16)
	s[0] = 5
	if a.At(0, 0) != 1 || b.At(0, 0) != 0 {
		t.Fatal("Floats aliased a live matrix")
	}
}

// TestWorkspaceNilDegradesToAllocation covers the nil-workspace contract
// every threaded call path relies on.
func TestWorkspaceNilDegradesToAllocation(t *testing.T) {
	var ws *Workspace
	ws.Reset() // must not panic
	m := ws.Get(2, 3)
	if r, c := m.Dims(); r != 2 || c != 3 {
		t.Fatalf("nil Get returned %dx%d", r, c)
	}
	if v := ws.Floats(4); len(v) != 4 {
		t.Fatalf("nil Floats returned len %d", len(v))
	}
}

// TestWorkspaceCapacityReuse checks that a smaller request reuses a
// larger free slab instead of growing the pool.
func TestWorkspaceCapacityReuse(t *testing.T) {
	ws := NewWorkspace()
	ws.Get(10, 10)
	ws.Reset()
	small := ws.Get(3, 3)
	if len(ws.bufs) != 1 {
		t.Fatalf("small request grew the pool to %d buffers", len(ws.bufs))
	}
	if r, c := small.Dims(); r != 3 || c != 3 {
		t.Fatalf("reused slab has shape %dx%d", r, c)
	}
}
