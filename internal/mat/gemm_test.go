package mat

import (
	"math"
	"math/rand"
	"testing"
)

// naiveMul is the reference triple loop the blocked kernels are validated
// against.
func naiveMul(a, b *Dense) *Dense {
	out := Zeros(a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		for j := 0; j < b.cols; j++ {
			var s float64
			for k := 0; k < a.cols; k++ {
				s += a.data[i*a.cols+k] * b.data[k*b.cols+j]
			}
			out.data[i*out.cols+j] = s
		}
	}
	return out
}

func randDense(r, c int, rng *rand.Rand) *Dense {
	m := Zeros(r, c)
	for i := range m.data {
		m.data[i] = rng.NormFloat64()
	}
	return m
}

// maxAbsDiff returns the largest element-wise |a-b|.
func maxAbsDiff(t *testing.T, a, b *Dense) float64 {
	t.Helper()
	if a.rows != b.rows || a.cols != b.cols {
		t.Fatalf("shape mismatch %dx%d vs %dx%d", a.rows, a.cols, b.rows, b.cols)
	}
	var worst float64
	for i, v := range a.data {
		if d := math.Abs(v - b.data[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// gemmShapes is the randomized + adversarial shape set shared by the
// blocked-kernel property tests: empty operands, single elements, sizes
// straddling the 4×4 register tile, and depths straddling the kcBlock
// slab boundary so ragged tail blocks of every kind are exercised.
func gemmShapes(rng *rand.Rand) [][3]int {
	shapes := [][3]int{
		{0, 3, 4}, {3, 0, 4}, {3, 4, 0}, {0, 0, 0},
		{1, 1, 1}, {1, 5, 1}, {4, 4, 4}, {5, 5, 5},
		{3, 7, 2}, {4, kcBlock, 4}, {3, kcBlock + 1, 5},
		{2, 2*kcBlock + 3, 3}, {17, 31, 13},
	}
	for i := 0; i < 12; i++ {
		shapes = append(shapes, [3]int{1 + rng.Intn(40), 1 + rng.Intn(3*kcBlock/2), 1 + rng.Intn(40)})
	}
	return shapes
}

// TestMulIntoMatchesNaive validates the blocked A·B kernel against the
// reference triple loop over randomized and degenerate shapes.
func TestMulIntoMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, sh := range gemmShapes(rng) {
		m, k, n := sh[0], sh[1], sh[2]
		a, b := randDense(m, k, rng), randDense(k, n, rng)
		got := MulInto(Zeros(m, n), a, b)
		want := naiveMul(a, b)
		if d := maxAbsDiff(t, got, want); d > 1e-10*float64(k+1) {
			t.Errorf("MulInto %dx%d·%dx%d differs from naive by %g", m, k, k, n, d)
		}
	}
}

// TestMulABTIntoMatchesNaive validates A·Bᵀ against naive Mul(a, bᵀ).
func TestMulABTIntoMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, sh := range gemmShapes(rng) {
		m, k, n := sh[0], sh[1], sh[2]
		a, b := randDense(m, k, rng), randDense(n, k, rng)
		got := MulABTInto(Zeros(m, n), a, b)
		want := naiveMul(a, Transpose(b))
		if d := maxAbsDiff(t, got, want); d > 1e-10*float64(k+1) {
			t.Errorf("MulABTInto %dx%d·(%dx%d)ᵀ differs from naive by %g", m, k, n, k, d)
		}
	}
}

// TestMulATBIntoMatchesNaive validates Aᵀ·B against naive Mul(aᵀ, b).
func TestMulATBIntoMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, sh := range gemmShapes(rng) {
		m, k, n := sh[0], sh[1], sh[2]
		a, b := randDense(k, m, rng), randDense(k, n, rng)
		got := MulATBInto(Zeros(m, n), a, b)
		want := naiveMul(Transpose(a), b)
		if d := maxAbsDiff(t, got, want); d > 1e-10*float64(k+1) {
			t.Errorf("MulATBInto (%dx%d)ᵀ·%dx%d differs from naive by %g", k, m, k, n, d)
		}
	}
}

// TestSymRankKMatchesNaive validates the triangular Gram kernel against
// naive aᵀ·a, including symmetry of the mirrored output.
func TestSymRankKMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	shapes := [][2]int{
		{0, 4}, {4, 0}, {1, 1}, {1, 7}, {7, 1}, {4, 4}, {5, 5},
		{kcBlock + 3, 6}, {2*kcBlock + 1, 9}, {300, 17},
	}
	for i := 0; i < 10; i++ {
		shapes = append(shapes, [2]int{1 + rng.Intn(3*kcBlock/2), 1 + rng.Intn(50)})
	}
	for _, sh := range shapes {
		n, m := sh[0], sh[1]
		a := randDense(n, m, rng)
		alpha := 1.0
		if n > 1 {
			alpha = 1 / float64(n-1)
		}
		got := SymRankKInto(Zeros(m, m), a, alpha)
		want := Scale(alpha, naiveMul(Transpose(a), a))
		if d := maxAbsDiff(t, got, want); d > 1e-10*float64(n+1) {
			t.Errorf("SymRankKInto %dx%d differs from naive by %g", n, m, d)
		}
		if !got.IsSymmetric(0) {
			t.Errorf("SymRankKInto %dx%d output is not exactly symmetric", n, m)
		}
	}
}

// TestSymRankKUpperIntoAccumulates checks that the raw triangular form
// adds into the accumulator (it must not zero it) and leaves the strict
// lower triangle untouched.
func TestSymRankKUpperIntoAccumulates(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	const n, m = 37, 9
	a := randDense(n, m, rng)
	acc := make([]float64, m*m)
	for i := range acc {
		acc[i] = 1000
	}
	SymRankKUpperInto(acc, a)
	want := naiveMul(Transpose(a), a)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			if j < i {
				if acc[i*m+j] != 1000 {
					t.Fatalf("lower-triangle entry (%d,%d) was touched", i, j)
				}
				continue
			}
			if d := math.Abs(acc[i*m+j] - 1000 - want.data[i*m+j]); d > 1e-9 {
				t.Fatalf("upper-triangle entry (%d,%d) off by %g", i, j, d)
			}
		}
	}
}

// TestGemmDeterministicAcrossWorkerSplits verifies the kernel determinism
// contract directly: any row-range split produces bit-identical output,
// because per-element accumulation order depends only on the shapes.
func TestGemmDeterministicAcrossWorkerSplits(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	const m, k, n = 23, 2*kcBlock + 7, 19
	a, b := randDense(m, k, rng), randDense(k, n, rng)

	ref := Zeros(m, n)
	var packB [nr * kcBlock]float64
	gemmRows(ref.data, a.data, b.data, m, k, n, 0, m, packB[:])

	for _, splits := range [][]int{{0, 23}, {0, 1, 23}, {0, 5, 9, 10, 23}, {0, 4, 8, 12, 16, 20, 23}} {
		got := Zeros(m, n)
		for s := 0; s+1 < len(splits); s++ {
			gemmRows(got.data, a.data, b.data, m, k, n, splits[s], splits[s+1], packB[:])
		}
		if !got.Equal(ref) {
			t.Fatalf("row split %v changed the result bits", splits)
		}
	}

	// And through the public entry points at forced parallelism.
	if !Mul(a, b).Equal(ref) {
		t.Fatal("Mul differs from the single-range kernel")
	}
}

// TestSymRankKDeterministicAcrossSplits verifies that the triangular
// kernel produces bit-identical output for any row partition — including
// the weighted splits symRankKSplit produces — and that those splits are
// valid monotone covers of [0, m].
func TestSymRankKDeterministicAcrossSplits(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	const n, m = kcBlock + 9, 33
	a := randDense(n, m, rng)

	ref := make([]float64, m*m)
	symRankKRows(ref, a.data, n, m, 0, m)

	splits := [][]int{{0, 1, m}, {0, 7, 8, 20, m}}
	for _, workers := range []int{2, 3, 5, 8} {
		splits = append(splits, symRankKSplit(m, workers))
	}
	for _, bounds := range splits {
		if bounds[0] != 0 || bounds[len(bounds)-1] != m {
			t.Fatalf("split %v does not cover [0,%d]", bounds, m)
		}
		got := make([]float64, m*m)
		for s := 0; s+1 < len(bounds); s++ {
			if bounds[s] > bounds[s+1] {
				t.Fatalf("split %v is not monotone", bounds)
			}
			symRankKRows(got, a.data, n, m, bounds[s], bounds[s+1])
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("split %v changed the result bits at %d", bounds, i)
			}
		}
	}
}

// TestSymRankKSplitBalance checks the weighted partition actually
// balances triangle area: no worker's share may exceed twice the mean —
// the failure mode of an even row split, where the first worker carries
// ~2× the mean and caps scaling.
func TestSymRankKSplitBalance(t *testing.T) {
	for _, m := range []int{16, 100, 333} {
		for _, workers := range []int{2, 4, 8} {
			bounds := symRankKSplit(m, workers)
			total := m * (m + 1) / 2
			area := func(r0, r1 int) int {
				cum := func(r int) int { return r*m - r*(r-1)/2 }
				return cum(r1) - cum(r0)
			}
			for k := 0; k < workers; k++ {
				share := area(bounds[k], bounds[k+1])
				if share*workers > 2*total {
					t.Errorf("m=%d workers=%d: segment %d carries %d of %d (bounds %v)",
						m, workers, k, share, total, bounds)
				}
			}
		}
	}
}

// TestMulABTConsistentWithMulInto ties the transpose-free forms to the
// plain kernel through explicitly materialized transposes.
func TestMulABTConsistentWithMulInto(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	a := randDense(30, 12, rng)
	b := randDense(25, 12, rng)
	abt := MulABT(a, b)
	viaT := Mul(a, Transpose(b))
	if d := maxAbsDiff(t, abt, viaT); d > 1e-12 {
		t.Errorf("MulABT differs from Mul(a, bᵀ) by %g", d)
	}
	c := randDense(12, 30, rng)
	atb := MulATB(c, randDense(12, 8, rng))
	if atb.Rows() != 30 || atb.Cols() != 8 {
		t.Fatalf("MulATB shape %dx%d, want 30x8", atb.Rows(), atb.Cols())
	}
}

// TestGemmShapePanics pins the panic contract of the new entry points.
func TestGemmShapePanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	a := Zeros(3, 4)
	b := Zeros(5, 6)
	expectPanic("MulABT mismatch", func() { MulABT(a, b) })
	expectPanic("MulATB mismatch", func() { MulATB(a, b) })
	expectPanic("MulABTInto bad dst", func() { MulABTInto(Zeros(1, 1), a, Zeros(5, 4)) })
	expectPanic("MulATBInto bad dst", func() { MulATBInto(Zeros(1, 1), Zeros(3, 2), Zeros(3, 5)) })
	expectPanic("SymRankKInto bad dst", func() { SymRankKInto(Zeros(3, 3), a, 1) })
	expectPanic("SymRankKInto aliased", func() {
		sq := Zeros(4, 4)
		SymRankKInto(sq, sq, 1)
	})
	expectPanic("SymRankKUpperInto short acc", func() { SymRankKUpperInto(make([]float64, 3), a) })
}
