package mat

import (
	"errors"
	"math/rand"
)

// ErrDependentColumns is returned by GramSchmidt when the input columns are
// (numerically) linearly dependent and cannot be orthonormalized.
var ErrDependentColumns = errors.New("mat: columns are linearly dependent")

// GramSchmidt orthonormalizes the columns of a using the modified
// Gram–Schmidt process and returns the resulting matrix with orthonormal
// columns. The paper (§7.1 step 2) uses this to manufacture random
// orthogonal eigenvector matrices.
func GramSchmidt(a *Dense) (*Dense, error) {
	n, m := a.rows, a.cols
	q := a.Clone()
	for j := 0; j < m; j++ {
		col := q.Col(j)
		// Subtract projections onto previously produced columns
		// (modified Gram–Schmidt: re-read the updated column).
		for k := 0; k < j; k++ {
			prev := q.Col(k)
			proj := Dot(prev, col)
			for i := 0; i < n; i++ {
				col[i] -= proj * prev[i]
			}
		}
		nrm := Norm2(col)
		if nrm < 1e-12 {
			return nil, ErrDependentColumns
		}
		for i := range col {
			col[i] /= nrm
		}
		q.SetCol(j, col)
	}
	return q, nil
}

// RandomOrthogonal returns a random n×n orthogonal matrix, built by
// Gram–Schmidt orthonormalization of a standard Gaussian matrix. Gaussian
// entries make linear dependence a probability-zero event; the retry loop
// guards against the astronomically unlikely numerical failure.
func RandomOrthogonal(n int, rng *rand.Rand) *Dense {
	for {
		g := Zeros(n, n)
		for i := range g.data {
			g.data[i] = rng.NormFloat64()
		}
		q, err := GramSchmidt(g)
		if err == nil {
			return q
		}
	}
}

// IsOrthonormalColumns reports whether qᵀq = I to within tol.
func IsOrthonormalColumns(q *Dense, tol float64) bool {
	qtq := SymRankK(q, 1)
	return qtq.EqualApprox(Identity(q.cols), tol)
}
