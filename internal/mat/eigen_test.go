package mat

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEigenSymKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a := New(2, 2, []float64{2, 1, 1, 2})
	e, err := EigenSym(a)
	if err != nil {
		t.Fatalf("EigenSym: %v", err)
	}
	if math.Abs(e.Values[0]-3) > 1e-12 || math.Abs(e.Values[1]-1) > 1e-12 {
		t.Errorf("Values = %v, want [3 1]", e.Values)
	}
}

func TestEigenSymDiagonal(t *testing.T) {
	a := Diag([]float64{5, 1, 9})
	e, err := EigenSym(a)
	if err != nil {
		t.Fatalf("EigenSym: %v", err)
	}
	want := []float64{9, 5, 1}
	for i := range want {
		if math.Abs(e.Values[i]-want[i]) > 1e-12 {
			t.Errorf("Values = %v, want %v", e.Values, want)
		}
	}
}

func TestEigenSymNonSquare(t *testing.T) {
	if _, err := EigenSym(Zeros(2, 3)); err == nil {
		t.Fatal("EigenSym of non-square matrix must error")
	}
}

func TestEigenSymEmpty(t *testing.T) {
	e, err := EigenSym(Zeros(0, 0))
	if err != nil {
		t.Fatalf("EigenSym(0x0): %v", err)
	}
	if len(e.Values) != 0 {
		t.Errorf("Values = %v, want empty", e.Values)
	}
}

// Property: Q·Λ·Qᵀ = A and QᵀQ = I for random symmetric matrices.
func TestEigenSymReconstructProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		g := randomMatrix(n, n, rng)
		a := Mul(Transpose(g), g) // symmetric PSD
		e, err := EigenSym(a)
		if err != nil {
			return false
		}
		if !IsOrthonormalColumns(e.Vectors, 1e-9) {
			return false
		}
		return e.Reconstruct().EqualApprox(a, 1e-8*math.Max(1, MaxAbs(a)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: eigenvalues are sorted descending and their sum equals the trace.
func TestEigenSymTraceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		g := randomMatrix(n, n, rng)
		a := Add(Mul(Transpose(g), g), Identity(n))
		e, err := EigenSym(a)
		if err != nil {
			return false
		}
		if !sort.IsSorted(sort.Reverse(sort.Float64Slice(e.Values))) {
			return false
		}
		var sum float64
		for _, v := range e.Values {
			sum += v
		}
		tr := Trace(a)
		return math.Abs(sum-tr) < 1e-8*math.Max(1, math.Abs(tr))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Eigenvector columns must actually satisfy A·q = λ·q.
func TestEigenSymVectorsSatisfyDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := randomMatrix(8, 8, rng)
	a := Mul(Transpose(g), g)
	e, err := EigenSym(a)
	if err != nil {
		t.Fatalf("EigenSym: %v", err)
	}
	for k := 0; k < 8; k++ {
		q := e.Vectors.Col(k)
		aq := MulVec(a, q)
		for i := range q {
			if math.Abs(aq[i]-e.Values[k]*q[i]) > 1e-7 {
				t.Fatalf("A·q != λq for eigenpair %d (component %d: %v vs %v)",
					k, i, aq[i], e.Values[k]*q[i])
			}
		}
	}
}

func TestEigenLargeMatrix(t *testing.T) {
	// The paper's experiments run at m=100; verify Jacobi convergence there.
	rng := rand.New(rand.NewSource(33))
	n := 100
	q := RandomOrthogonal(n, rng)
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(n - i)
	}
	a := Mul(Mul(q, Diag(vals)), Transpose(q))
	e, err := EigenSym(a)
	if err != nil {
		t.Fatalf("EigenSym: %v", err)
	}
	for i, want := range vals {
		if math.Abs(e.Values[i]-want) > 1e-7 {
			t.Fatalf("Values[%d] = %v, want %v", i, e.Values[i], want)
		}
	}
}

func TestTopVectors(t *testing.T) {
	a := Diag([]float64{3, 2, 1})
	e, _ := EigenSym(a)
	top := e.TopVectors(2)
	if top.Rows() != 3 || top.Cols() != 2 {
		t.Fatalf("TopVectors dims %dx%d, want 3x2", top.Rows(), top.Cols())
	}
	if !IsOrthonormalColumns(top, 1e-12) {
		t.Error("TopVectors columns not orthonormal")
	}
}

func TestTopVectorsPanicsOutOfRange(t *testing.T) {
	e, _ := EigenSym(Identity(2))
	defer func() {
		if recover() == nil {
			t.Fatal("TopVectors(5) on 2x2 did not panic")
		}
	}()
	e.TopVectors(5)
}

func TestLargestGapSplit(t *testing.T) {
	tests := []struct {
		vals []float64
		want int
	}{
		{[]float64{400, 400, 400, 5, 4, 3}, 3},
		{[]float64{100, 10, 9, 8}, 1},
		{[]float64{10, 9, 1}, 2},
		{[]float64{5}, 1},
		{nil, 0},
	}
	for _, tc := range tests {
		e := &Eigen{Values: tc.vals, Vectors: Identity(len(tc.vals))}
		if got := e.LargestGapSplit(); got != tc.want {
			t.Errorf("LargestGapSplit(%v) = %d, want %d", tc.vals, got, tc.want)
		}
	}
}

func TestEnergySplit(t *testing.T) {
	e := &Eigen{Values: []float64{50, 30, 15, 5}, Vectors: Identity(4)}
	if got := e.EnergySplit(0.5); got != 1 {
		t.Errorf("EnergySplit(0.5) = %d, want 1", got)
	}
	if got := e.EnergySplit(0.8); got != 2 {
		t.Errorf("EnergySplit(0.8) = %d, want 2", got)
	}
	if got := e.EnergySplit(1.0); got != 4 {
		t.Errorf("EnergySplit(1.0) = %d, want 4", got)
	}
	zero := &Eigen{Values: []float64{0, 0}, Vectors: Identity(2)}
	if got := zero.EnergySplit(0.9); got != 2 {
		t.Errorf("EnergySplit on zero spectrum = %d, want 2", got)
	}
}
