package mat

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEigenSymKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a := New(2, 2, []float64{2, 1, 1, 2})
	e, err := EigenSym(a)
	if err != nil {
		t.Fatalf("EigenSym: %v", err)
	}
	if math.Abs(e.Values[0]-3) > 1e-12 || math.Abs(e.Values[1]-1) > 1e-12 {
		t.Errorf("Values = %v, want [3 1]", e.Values)
	}
}

func TestEigenSymDiagonal(t *testing.T) {
	a := Diag([]float64{5, 1, 9})
	e, err := EigenSym(a)
	if err != nil {
		t.Fatalf("EigenSym: %v", err)
	}
	want := []float64{9, 5, 1}
	for i := range want {
		if math.Abs(e.Values[i]-want[i]) > 1e-12 {
			t.Errorf("Values = %v, want %v", e.Values, want)
		}
	}
}

func TestEigenSymNonSquare(t *testing.T) {
	if _, err := EigenSym(Zeros(2, 3)); err == nil {
		t.Fatal("EigenSym of non-square matrix must error")
	}
}

func TestEigenSymEmpty(t *testing.T) {
	e, err := EigenSym(Zeros(0, 0))
	if err != nil {
		t.Fatalf("EigenSym(0x0): %v", err)
	}
	if len(e.Values) != 0 {
		t.Errorf("Values = %v, want empty", e.Values)
	}
}

// Property: Q·Λ·Qᵀ = A and QᵀQ = I for random symmetric matrices.
func TestEigenSymReconstructProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		g := randomMatrix(n, n, rng)
		a := Mul(Transpose(g), g) // symmetric PSD
		e, err := EigenSym(a)
		if err != nil {
			return false
		}
		if !IsOrthonormalColumns(e.Vectors, 1e-9) {
			return false
		}
		return e.Reconstruct().EqualApprox(a, 1e-8*math.Max(1, MaxAbs(a)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: eigenvalues are sorted descending and their sum equals the trace.
func TestEigenSymTraceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		g := randomMatrix(n, n, rng)
		a := Add(Mul(Transpose(g), g), Identity(n))
		e, err := EigenSym(a)
		if err != nil {
			return false
		}
		if !sort.IsSorted(sort.Reverse(sort.Float64Slice(e.Values))) {
			return false
		}
		var sum float64
		for _, v := range e.Values {
			sum += v
		}
		tr := Trace(a)
		return math.Abs(sum-tr) < 1e-8*math.Max(1, math.Abs(tr))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Eigenvector columns must actually satisfy A·q = λ·q.
func TestEigenSymVectorsSatisfyDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := randomMatrix(8, 8, rng)
	a := Mul(Transpose(g), g)
	e, err := EigenSym(a)
	if err != nil {
		t.Fatalf("EigenSym: %v", err)
	}
	for k := 0; k < 8; k++ {
		q := e.Vectors.Col(k)
		aq := MulVec(a, q)
		for i := range q {
			if math.Abs(aq[i]-e.Values[k]*q[i]) > 1e-7 {
				t.Fatalf("A·q != λq for eigenpair %d (component %d: %v vs %v)",
					k, i, aq[i], e.Values[k]*q[i])
			}
		}
	}
}

func TestEigenLargeMatrix(t *testing.T) {
	// The paper's experiments run at m=100; verify Jacobi convergence there.
	rng := rand.New(rand.NewSource(33))
	n := 100
	q := RandomOrthogonal(n, rng)
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(n - i)
	}
	a := Mul(Mul(q, Diag(vals)), Transpose(q))
	e, err := EigenSym(a)
	if err != nil {
		t.Fatalf("EigenSym: %v", err)
	}
	for i, want := range vals {
		if math.Abs(e.Values[i]-want) > 1e-7 {
			t.Fatalf("Values[%d] = %v, want %v", i, e.Values[i], want)
		}
	}
}

// TestReconstructTruncated pins the rank-p reconstruction: an Eigen
// value holding only the top p eigenpairs must reconstruct Σᵢ λᵢqᵢqᵢᵀ,
// not panic on its rectangular Vectors.
func TestReconstructTruncated(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	const n, p = 8, 3
	q := RandomOrthogonal(n, rng)
	vals := []float64{40, 30, 20, 4, 3, 2, 1, 0.5}
	full := &Eigen{Values: vals, Vectors: q}
	top := &Eigen{Values: vals[:p], Vectors: full.TopVectors(p)}
	got := top.Reconstruct()

	want := Zeros(n, n)
	for k := 0; k < p; k++ {
		col := q.Col(k)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want.Set(i, j, want.At(i, j)+vals[k]*col[i]*col[j])
			}
		}
	}
	if !got.EqualApprox(want, 1e-12) {
		t.Fatal("rank-p Reconstruct differs from explicit eigenpair sum")
	}
	if ws := NewWorkspace(); !top.ReconstructWS(ws).EqualApprox(want, 1e-12) {
		t.Fatal("rank-p ReconstructWS differs from explicit eigenpair sum")
	}
}

func TestTopVectors(t *testing.T) {
	a := Diag([]float64{3, 2, 1})
	e, _ := EigenSym(a)
	top := e.TopVectors(2)
	if top.Rows() != 3 || top.Cols() != 2 {
		t.Fatalf("TopVectors dims %dx%d, want 3x2", top.Rows(), top.Cols())
	}
	if !IsOrthonormalColumns(top, 1e-12) {
		t.Error("TopVectors columns not orthonormal")
	}
}

func TestTopVectorsPanicsOutOfRange(t *testing.T) {
	e, _ := EigenSym(Identity(2))
	defer func() {
		if recover() == nil {
			t.Fatal("TopVectors(5) on 2x2 did not panic")
		}
	}()
	e.TopVectors(5)
}

func TestLargestGapSplit(t *testing.T) {
	tests := []struct {
		vals []float64
		want int
	}{
		{[]float64{400, 400, 400, 5, 4, 3}, 3},
		{[]float64{100, 10, 9, 8}, 1},
		{[]float64{10, 9, 1}, 2},
		{[]float64{5}, 1},
		{nil, 0},
	}
	for _, tc := range tests {
		e := &Eigen{Values: tc.vals, Vectors: Identity(len(tc.vals))}
		if got := e.LargestGapSplit(); got != tc.want {
			t.Errorf("LargestGapSplit(%v) = %d, want %d", tc.vals, got, tc.want)
		}
	}
}

// crossCheckSolvers runs both eigensolvers on a and requires them to
// agree: eigenvalues to 1e-9 (relative to the spectral scale) and the
// reconstructions Q·Λ·Qᵀ to the same tolerance. Eigenvectors are not
// compared directly — they are only determined up to sign, and up to a
// rotation inside degenerate eigenspaces — but a matching reconstruction
// plus orthonormal columns pins everything that is well-defined.
func crossCheckSolvers(t *testing.T, name string, a *Dense) {
	t.Helper()
	ql, err := EigenSym(a)
	if err != nil {
		t.Fatalf("%s: EigenSym: %v", name, err)
	}
	jac, err := EigenSymJacobi(a)
	if err != nil {
		t.Fatalf("%s: EigenSymJacobi: %v", name, err)
	}
	scale := math.Max(1, MaxAbs(a))
	tol := 1e-9 * scale
	for i := range ql.Values {
		if d := math.Abs(ql.Values[i] - jac.Values[i]); d > tol {
			t.Fatalf("%s: eigenvalue %d differs by %g (QL %v, Jacobi %v)", name, i, d, ql.Values[i], jac.Values[i])
		}
	}
	if !IsOrthonormalColumns(ql.Vectors, 1e-9) {
		t.Fatalf("%s: QL eigenvectors not orthonormal", name)
	}
	if !ql.Reconstruct().EqualApprox(a, tol) {
		t.Fatalf("%s: QL reconstruction off by more than %g", name, tol)
	}
	if !jac.Reconstruct().EqualApprox(a, tol) {
		t.Fatalf("%s: Jacobi reconstruction off by more than %g", name, tol)
	}
}

// TestEigenSymQLvsJacobiSpiked cross-validates the two solvers on the
// paper's spiked-covariance shape (few large eigenvalues over a flat
// tail) at several sizes.
func TestEigenSymQLvsJacobiSpiked(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	for _, n := range []int{3, 10, 40, 100} {
		q := RandomOrthogonal(n, rng)
		vals := make([]float64, n)
		for i := range vals {
			if i < n/10+1 {
				vals[i] = 400
			} else {
				vals[i] = 4
			}
		}
		e := &Eigen{Values: vals, Vectors: q}
		crossCheckSolvers(t, "spiked", e.Reconstruct())
	}
}

// TestEigenSymQLvsJacobiDegenerate cross-validates on spectra with
// repeated eigenvalues, where eigenvectors are only defined up to a
// rotation of the degenerate subspace.
func TestEigenSymQLvsJacobiDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(58))
	q := RandomOrthogonal(12, rng)
	vals := []float64{9, 9, 9, 9, 4, 4, 4, 1, 1, 1, 1, 1}
	e := &Eigen{Values: vals, Vectors: q}
	a := e.Reconstruct()
	crossCheckSolvers(t, "degenerate", a)

	got, err := EigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range vals {
		if math.Abs(got.Values[i]-want) > 1e-9 {
			t.Fatalf("degenerate eigenvalue %d = %v, want %v", i, got.Values[i], want)
		}
	}
}

// TestEigenSymQLvsJacobiNearZero cross-validates on (near-)zero matrices
// — the all-zero matrix, a tiny perturbation of it, and a rank-1 matrix
// whose remaining spectrum is exactly zero.
func TestEigenSymQLvsJacobiNearZero(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	crossCheckSolvers(t, "zero", Zeros(7, 7))

	tiny := Zeros(6, 6)
	for i := range tiny.data {
		tiny.data[i] = 1e-13 * rng.NormFloat64()
	}
	// Symmetrize the perturbation.
	sym := Scale(0.5, Add(tiny, Transpose(tiny)))
	crossCheckSolvers(t, "near-zero", sym)

	u := make([]float64, 9)
	for i := range u {
		u[i] = rng.NormFloat64()
	}
	crossCheckSolvers(t, "rank-1", OuterProduct(u, u))
}

// TestEigenSymWSReuse runs the workspace-threaded solver repeatedly and
// checks the results match the allocating path bit-for-bit while the
// workspace stops growing after the first decomposition.
func TestEigenSymWSReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	g := randomMatrix(20, 20, rng)
	a := Mul(Transpose(g), g)
	want, err := EigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	ws := NewWorkspace()
	var grown int
	for i := 0; i < 4; i++ {
		ws.Reset()
		got, err := EigenSymWS(ws, a)
		if err != nil {
			t.Fatal(err)
		}
		for k := range want.Values {
			if got.Values[k] != want.Values[k] {
				t.Fatalf("run %d: workspace path changed eigenvalue %d", i, k)
			}
		}
		if !got.Vectors.Equal(want.Vectors) {
			t.Fatalf("run %d: workspace path changed eigenvectors", i)
		}
		if i == 0 {
			grown = len(ws.bufs)
		} else if len(ws.bufs) != grown {
			t.Fatalf("run %d: workspace kept growing (%d -> %d buffers)", i, grown, len(ws.bufs))
		}
	}
}

func TestEnergySplit(t *testing.T) {
	e := &Eigen{Values: []float64{50, 30, 15, 5}, Vectors: Identity(4)}
	if got := e.EnergySplit(0.5); got != 1 {
		t.Errorf("EnergySplit(0.5) = %d, want 1", got)
	}
	if got := e.EnergySplit(0.8); got != 2 {
		t.Errorf("EnergySplit(0.8) = %d, want 2", got)
	}
	if got := e.EnergySplit(1.0); got != 4 {
		t.Errorf("EnergySplit(1.0) = %d, want 4", got)
	}
	zero := &Eigen{Values: []float64{0, 0}, Vectors: Identity(2)}
	if got := zero.EnergySplit(0.9); got != 2 {
		t.Errorf("EnergySplit on zero spectrum = %d, want 2", got)
	}
}
