package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomMatrix builds a deterministic pseudo-random r×c matrix for tests.
func randomMatrix(r, c int, rng *rand.Rand) *Dense {
	m := Zeros(r, c)
	for i := range m.data {
		m.data[i] = rng.NormFloat64()
	}
	return m
}

func TestAddSub(t *testing.T) {
	a := New(2, 2, []float64{1, 2, 3, 4})
	b := New(2, 2, []float64{10, 20, 30, 40})
	sum := Add(a, b)
	want := New(2, 2, []float64{11, 22, 33, 44})
	if !sum.Equal(want) {
		t.Errorf("Add = %v, want %v", sum, want)
	}
	diff := Sub(sum, b)
	if !diff.Equal(a) {
		t.Errorf("Sub(Add(a,b),b) = %v, want %v", diff, a)
	}
}

func TestAddShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add shape mismatch did not panic")
		}
	}()
	Add(Zeros(2, 2), Zeros(2, 3))
}

func TestScale(t *testing.T) {
	a := New(1, 3, []float64{1, -2, 3})
	got := Scale(-2, a)
	want := New(1, 3, []float64{-2, 4, -6})
	if !got.Equal(want) {
		t.Errorf("Scale = %v, want %v", got, want)
	}
}

func TestMulKnown(t *testing.T) {
	a := New(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := New(3, 2, []float64{7, 8, 9, 10, 11, 12})
	got := Mul(a, b)
	want := New(2, 2, []float64{58, 64, 139, 154})
	if !got.Equal(want) {
		t.Errorf("Mul = %v, want %v", got, want)
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomMatrix(4, 4, rng)
	if !Mul(a, Identity(4)).EqualApprox(a, 1e-14) {
		t.Error("A·I != A")
	}
	if !Mul(Identity(4), a).EqualApprox(a, 1e-14) {
		t.Error("I·A != A")
	}
}

func TestMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Mul shape mismatch did not panic")
		}
	}()
	Mul(Zeros(2, 3), Zeros(2, 3))
}

func TestTranspose(t *testing.T) {
	a := New(2, 3, []float64{1, 2, 3, 4, 5, 6})
	got := Transpose(a)
	want := New(3, 2, []float64{1, 4, 2, 5, 3, 6})
	if !got.Equal(want) {
		t.Errorf("Transpose = %v, want %v", got, want)
	}
}

// Property: (AB)ᵀ = BᵀAᵀ.
func TestTransposeOfProductProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		k := 1 + r.Intn(6)
		m := 1 + r.Intn(6)
		a := randomMatrix(n, k, rng)
		b := randomMatrix(k, m, rng)
		lhs := Transpose(Mul(a, b))
		rhs := Mul(Transpose(b), Transpose(a))
		return lhs.EqualApprox(rhs, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: matrix multiplication is associative.
func TestMulAssociativeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(5)
		k := 1 + r.Intn(5)
		l := 1 + r.Intn(5)
		m := 1 + r.Intn(5)
		a := randomMatrix(n, k, rng)
		b := randomMatrix(k, l, rng)
		c := randomMatrix(l, m, rng)
		lhs := Mul(Mul(a, b), c)
		rhs := Mul(a, Mul(b, c))
		return lhs.EqualApprox(rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMulVec(t *testing.T) {
	a := New(2, 3, []float64{1, 2, 3, 4, 5, 6})
	got := MulVec(a, []float64{1, 0, -1})
	want := []float64{-2, -2}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-15 {
			t.Errorf("MulVec[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestMulVecMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomMatrix(5, 4, rng)
	x := []float64{1, -1, 2, 0.5}
	xm := New(4, 1, append([]float64(nil), x...))
	got := MulVec(a, x)
	want := Mul(a, xm)
	for i, v := range got {
		if math.Abs(v-want.At(i, 0)) > 1e-12 {
			t.Errorf("MulVec[%d] = %v, Mul gives %v", i, v, want.At(i, 0))
		}
	}
}

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
}

func TestDotLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot length mismatch did not panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestNorm2(t *testing.T) {
	if got := Norm2([]float64{3, 4}); math.Abs(got-5) > 1e-15 {
		t.Errorf("Norm2 = %v, want 5", got)
	}
	if got := Norm2(nil); got != 0 {
		t.Errorf("Norm2(nil) = %v, want 0", got)
	}
}

func TestFrobeniusNorm(t *testing.T) {
	a := New(2, 2, []float64{1, 2, 2, 4})
	if got := FrobeniusNorm(a); math.Abs(got-5) > 1e-15 {
		t.Errorf("FrobeniusNorm = %v, want 5", got)
	}
}

func TestAddScaledIdentity(t *testing.T) {
	a := New(2, 2, []float64{1, 2, 3, 4})
	got := AddScaledIdentity(a, 10)
	want := New(2, 2, []float64{11, 2, 3, 14})
	if !got.Equal(want) {
		t.Errorf("AddScaledIdentity = %v, want %v", got, want)
	}
	if a.At(0, 0) != 1 {
		t.Error("AddScaledIdentity must not mutate its input")
	}
}

func TestOuterProduct(t *testing.T) {
	got := OuterProduct([]float64{1, 2}, []float64{3, 4, 5})
	want := New(2, 3, []float64{3, 4, 5, 6, 8, 10})
	if !got.Equal(want) {
		t.Errorf("OuterProduct = %v, want %v", got, want)
	}
}
