package mat

import (
	"math/rand"
	"sync/atomic"
	"testing"
)

// TestMulParallelMatchesSerial drives Mul above the fan-out threshold
// and checks the result bit-for-bit against the single-worker kernel.
func TestMulParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n, m = 300, 80 // n·m·n > gemmParallelMinFlops
	a := Zeros(n, m)
	for i := range a.data {
		a.data[i] = rng.NormFloat64()
	}
	b := Transpose(a)
	got := Mul(a, b)

	want := Zeros(n, n)
	var packB [nr * kcBlock]float64
	gemmRows(want.data, a.data, b.data, n, m, n, 0, n, packB[:])
	if !got.Equal(want) {
		t.Fatal("parallel Mul differs from serial kernel")
	}
}

func TestParallelRowsCoversRange(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		const rows = 100
		var hit [rows]int64
		parallelRows(rows, workers, func(r0, r1 int) {
			for i := r0; i < r1; i++ {
				atomic.AddInt64(&hit[i], 1)
			}
		})
		for i, v := range hit {
			if v != 1 {
				t.Fatalf("workers=%d: row %d covered %d times", workers, i, v)
			}
		}
	}
}
