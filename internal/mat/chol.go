package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite is returned when Cholesky factorization fails
// because the input is not (numerically) symmetric positive definite.
var ErrNotPositiveDefinite = errors.New("mat: matrix is not positive definite")

// Cholesky holds the lower-triangular factor L with A = L·Lᵀ.
type Cholesky struct {
	l *Dense
}

// FactorizeCholesky computes the Cholesky factorization of symmetric
// positive definite a. Only the lower triangle of a is read.
func FactorizeCholesky(a *Dense) (*Cholesky, error) {
	l := Zeros(a.rows, a.rows)
	if err := factorizeCholeskyInto(l, a); err != nil {
		return nil, err
	}
	return &Cholesky{l: l}, nil
}

// factorizeCholeskyInto writes the lower-triangular factor of a into the
// pre-zeroed square matrix l.
func factorizeCholeskyInto(l, a *Dense) error {
	n := a.rows
	if a.cols != n {
		return fmt.Errorf("mat: Cholesky of non-square %dx%d matrix", a.rows, a.cols)
	}
	ld := l.data
	for j := 0; j < n; j++ {
		var diag float64 = a.At(j, j)
		for k := 0; k < j; k++ {
			diag -= ld[j*n+k] * ld[j*n+k]
		}
		if diag <= 0 || math.IsNaN(diag) {
			return ErrNotPositiveDefinite
		}
		dj := math.Sqrt(diag)
		ld[j*n+j] = dj
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= ld[i*n+k] * ld[j*n+k]
			}
			ld[i*n+j] = s / dj
		}
	}
	return nil
}

// L returns a copy of the lower-triangular factor.
func (c *Cholesky) L() *Dense { return c.l.Clone() }

// LMulVec returns L·x, used for sampling multivariate normals.
func (c *Cholesky) LMulVec(x []float64) []float64 {
	n := c.l.rows
	if len(x) != n {
		panic(fmt.Sprintf("mat: LMulVec length %d, want %d", len(x), n))
	}
	out := make([]float64, n)
	ld := c.l.data
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j <= i; j++ {
			s += ld[i*n+j] * x[j]
		}
		out[i] = s
	}
	return out
}

// SolveVec solves A·x = b using the factorization (forward then back
// substitution).
func (c *Cholesky) SolveVec(b []float64) ([]float64, error) {
	n := c.l.rows
	if len(b) != n {
		return nil, fmt.Errorf("mat: Cholesky SolveVec rhs length %d, want %d", len(b), n)
	}
	ld := c.l.data
	y := make([]float64, n)
	// L·y = b
	for i := 0; i < n; i++ {
		s := b[i]
		for j := 0; j < i; j++ {
			s -= ld[i*n+j] * y[j]
		}
		piv := ld[i*n+i]
		if piv == 0 {
			return nil, ErrNotPositiveDefinite
		}
		y[i] = s / piv
	}
	// Lᵀ·x = y
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= ld[j*n+i] * x[j]
		}
		x[i] = s / ld[i*n+i]
	}
	return x, nil
}

// LogDet returns log(det(A)) = 2·Σ log L[i][i].
func (c *Cholesky) LogDet() float64 {
	n := c.l.rows
	var s float64
	for i := 0; i < n; i++ {
		s += math.Log(c.l.data[i*n+i])
	}
	return 2 * s
}

// InverseSPD returns the inverse of a symmetric positive definite matrix
// via its Cholesky factorization. It falls back to LU if the matrix is not
// numerically positive definite (e.g. a sample covariance with a tiny
// negative eigenvalue after the Theorem 5.1 diagonal correction).
func InverseSPD(a *Dense) (*Dense, error) { return InverseSPDWS(nil, a) }

// InverseSPDWS is InverseSPD with the factor, result and per-column
// solve scratch drawn from ws — no per-column allocations, which is what
// keeps the Bayes estimator's steady-state footprint flat. The result is
// valid until ws.Reset; a nil ws allocates. The LU fallback for
// non-SPD inputs allocates regardless (it is off the hot path: the
// estimators repair their covariances to SPD before inverting).
func InverseSPDWS(ws *Workspace, a *Dense) (*Dense, error) {
	n := a.rows
	if a.cols != n {
		return nil, fmt.Errorf("mat: Cholesky of non-square %dx%d matrix", a.rows, a.cols)
	}
	l := ws.Get(n, n)
	if err := factorizeCholeskyInto(l, a); err != nil {
		return Inverse(a)
	}
	out := ws.Get(n, n)
	ld := l.data
	e := ws.Floats(n)
	y := ws.Floats(n)
	x := ws.Floats(n)
	for j := 0; j < n; j++ {
		e[j] = 1
		// L·y = e, then Lᵀ·x = y. The factorization succeeded, so every
		// pivot is > 0.
		for i := 0; i < n; i++ {
			s := e[i]
			for k := 0; k < i; k++ {
				s -= ld[i*n+k] * y[k]
			}
			y[i] = s / ld[i*n+i]
		}
		for i := n - 1; i >= 0; i-- {
			s := y[i]
			for k := i + 1; k < n; k++ {
				s -= ld[k*n+i] * x[k]
			}
			x[i] = s / ld[i*n+i]
		}
		out.SetCol(j, x)
		e[j] = 0
	}
	return out, nil
}
