package mat

import "fmt"

// Workspace is a reusable scratch arena for the numeric pipelines. The
// attacks, the experiment trial loop and the server's pool workers
// allocate the same matrix and vector shapes over and over; a Workspace
// hands those buffers out of a free list so steady-state allocations per
// reconstruction drop to (near) zero.
//
// Usage contract:
//
//   - Get/Floats return zeroed storage owned by the workspace. Everything
//     handed out is valid until the next Reset, which reclaims all of it
//     at once — there is no per-buffer release.
//   - A Workspace is owned by one goroutine at a time (one pool worker,
//     one trial). It is not safe for concurrent use; concurrent callers
//     each get their own (per-worker workspaces are what preserves the
//     experiment runner's bit-identical-at-any-worker-count guarantee —
//     buffers are zeroed on Get, so workspace reuse never changes a
//     result).
//   - A nil *Workspace is valid everywhere and degrades to plain
//     allocation, so workspace-threaded code needs no special casing.
type Workspace struct {
	bufs []*wsBuf
}

// wsBuf is one pooled slab plus a reusable matrix header.
type wsBuf struct {
	data []float64
	hdr  Dense
	used bool
}

// NewWorkspace returns an empty workspace.
func NewWorkspace() *Workspace { return &Workspace{} }

// Reset reclaims every buffer handed out since the last Reset. Matrices
// and slices previously returned by Get/Floats are invalid afterwards.
func (w *Workspace) Reset() {
	if w == nil {
		return
	}
	for _, b := range w.bufs {
		b.used = false
	}
}

// acquire returns a free pooled slab with capacity ≥ n, zeroed to length
// n, growing the pool on a miss. Exact-capacity slabs are preferred so a
// steady-state workload (same shapes every trial) settles into a fixed
// buffer set.
func (w *Workspace) acquire(n int) *wsBuf {
	var spare *wsBuf
	for _, b := range w.bufs {
		if b.used || cap(b.data) < n {
			continue
		}
		if cap(b.data) == n {
			spare = b
			break
		}
		if spare == nil || cap(b.data) < cap(spare.data) {
			spare = b
		}
	}
	if spare == nil {
		spare = &wsBuf{data: make([]float64, n)}
		w.bufs = append(w.bufs, spare)
	}
	spare.used = true
	spare.data = spare.data[:n]
	for i := range spare.data {
		spare.data[i] = 0
	}
	return spare
}

// Get returns a zeroed r×c matrix backed by pooled storage, valid until
// Reset. A nil workspace returns a freshly allocated matrix.
func (w *Workspace) Get(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: Workspace.Get negative dimension %dx%d", r, c))
	}
	if w == nil {
		return Zeros(r, c)
	}
	b := w.acquire(r * c)
	b.hdr = Dense{rows: r, cols: c, data: b.data}
	return &b.hdr
}

// Floats returns a zeroed length-n slice backed by pooled storage, valid
// until Reset. A nil workspace returns a fresh slice.
func (w *Workspace) Floats(n int) []float64 {
	if n < 0 {
		panic(fmt.Sprintf("mat: Workspace.Floats negative length %d", n))
	}
	if w == nil {
		return make([]float64, n)
	}
	return w.acquire(n).data
}
