package mat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLUSolveKnown(t *testing.T) {
	a := New(2, 2, []float64{2, 1, 1, 3})
	x, err := SolveVec(a, []float64{5, 10})
	if err != nil {
		t.Fatalf("SolveVec: %v", err)
	}
	// 2x + y = 5, x + 3y = 10 → x = 1, y = 3
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Errorf("solution = %v, want [1 3]", x)
	}
}

func TestDetKnown(t *testing.T) {
	a := New(2, 2, []float64{1, 2, 3, 4})
	if got := Det(a); math.Abs(got-(-2)) > 1e-12 {
		t.Errorf("Det = %v, want -2", got)
	}
	// Pivoting path: leading zero.
	b := New(2, 2, []float64{0, 1, 1, 0})
	if got := Det(b); math.Abs(got-(-1)) > 1e-12 {
		t.Errorf("Det with pivoting = %v, want -1", got)
	}
}

func TestDetSingularIsZero(t *testing.T) {
	a := New(2, 2, []float64{1, 2, 2, 4})
	if got := Det(a); got != 0 {
		t.Errorf("Det(singular) = %v, want 0", got)
	}
}

func TestFactorizeLUNonSquare(t *testing.T) {
	if _, err := FactorizeLU(Zeros(2, 3)); err == nil {
		t.Fatal("LU of non-square matrix must error")
	}
}

func TestFactorizeLUSingular(t *testing.T) {
	a := New(2, 2, []float64{1, 1, 1, 1})
	_, err := FactorizeLU(a)
	if !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestInverseKnown(t *testing.T) {
	a := New(2, 2, []float64{4, 7, 2, 6})
	inv, err := Inverse(a)
	if err != nil {
		t.Fatalf("Inverse: %v", err)
	}
	want := New(2, 2, []float64{0.6, -0.7, -0.2, 0.4})
	if !inv.EqualApprox(want, 1e-12) {
		t.Errorf("Inverse = %v, want %v", inv, want)
	}
}

// Property: A·A⁻¹ = I for random well-conditioned matrices.
func TestInverseProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		// Diagonally dominant matrices are always invertible.
		a := randomMatrix(n, n, rng)
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n)+1)
		}
		inv, err := Inverse(a)
		if err != nil {
			return false
		}
		return Mul(a, inv).EqualApprox(Identity(n), 1e-8) &&
			Mul(inv, a).EqualApprox(Identity(n), 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: SolveVec residual ‖Ax−b‖ is tiny.
func TestSolveResidualProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		a := randomMatrix(n, n, rng)
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n)+1)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := SolveVec(a, b)
		if err != nil {
			return false
		}
		ax := MulVec(a, x)
		for i := range ax {
			if math.Abs(ax[i]-b[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSolveMatrixRHS(t *testing.T) {
	a := New(2, 2, []float64{2, 0, 0, 4})
	f, err := FactorizeLU(a)
	if err != nil {
		t.Fatalf("FactorizeLU: %v", err)
	}
	b := New(2, 2, []float64{2, 4, 8, 12})
	x, err := f.Solve(b)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	want := New(2, 2, []float64{1, 2, 2, 3})
	if !x.EqualApprox(want, 1e-12) {
		t.Errorf("Solve = %v, want %v", x, want)
	}
}

func TestSolveVecLengthMismatch(t *testing.T) {
	f, err := FactorizeLU(Identity(2))
	if err != nil {
		t.Fatalf("FactorizeLU: %v", err)
	}
	if _, err := f.SolveVec([]float64{1, 2, 3}); err == nil {
		t.Fatal("SolveVec with wrong rhs length must error")
	}
}

func TestDetMultiplicativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		a := randomMatrix(n, n, rng)
		b := randomMatrix(n, n, rng)
		da, db := Det(a), Det(b)
		dab := Det(Mul(a, b))
		scale := math.Max(1, math.Abs(da*db))
		return math.Abs(dab-da*db)/scale < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
