package mat

import (
	"fmt"
	"math"
)

// shapeCheck panics unless a and b have identical dimensions.
func shapeCheck(op string, a, b *Dense) {
	if a.rows != b.rows || a.cols != b.cols {
		panic(fmt.Sprintf("mat: %s shape mismatch %dx%d vs %dx%d", op, a.rows, a.cols, b.rows, b.cols))
	}
}

// Add returns a + b.
func Add(a, b *Dense) *Dense {
	shapeCheck("Add", a, b)
	out := a.Clone()
	for i, v := range b.data {
		out.data[i] += v
	}
	return out
}

// Sub returns a - b.
func Sub(a, b *Dense) *Dense {
	shapeCheck("Sub", a, b)
	out := a.Clone()
	for i, v := range b.data {
		out.data[i] -= v
	}
	return out
}

// Scale returns s * a.
func Scale(s float64, a *Dense) *Dense {
	out := a.Clone()
	for i := range out.data {
		out.data[i] *= s
	}
	return out
}

// Mul returns the matrix product a·b. Large products are computed on a
// goroutine pool, one contiguous block of output rows per worker; every
// output row is produced by exactly one goroutine in the same ikj order
// as the serial path, so the result is bit-identical at any parallelism.
func Mul(a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic(fmt.Sprintf("mat: Mul shape mismatch %dx%d · %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	return MulInto(Zeros(a.rows, b.cols), a, b)
}

// MulInto computes a·b into dst (which is zeroed first) and returns dst.
// It is the allocation-free form of Mul for callers that reuse an output
// buffer across many products of the same shape — the streaming attacks
// project one chunk after another through fixed gain matrices. dst must
// not alias a or b. The kernel and chunking are identical to Mul, so the
// result is bit-identical to the allocating path.
func MulInto(dst, a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic(fmt.Sprintf("mat: MulInto shape mismatch %dx%d · %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	if dst.rows != a.rows || dst.cols != b.cols {
		panic(fmt.Sprintf("mat: MulInto destination is %dx%d, want %dx%d", dst.rows, dst.cols, a.rows, b.cols))
	}
	if dst == a || dst == b {
		panic("mat: MulInto destination aliases an operand")
	}
	for i := range dst.data {
		dst.data[i] = 0
	}
	workers := 1
	if flops := int64(a.rows) * int64(a.cols) * int64(b.cols); flops >= mulParallelMinFlops {
		workers = maxWorkers()
	}
	parallelRows(a.rows, workers, func(r0, r1 int) {
		mulRows(dst, a, b, r0, r1)
	})
	return dst
}

// mulRows computes output rows [r0, r1) of a·b. The ikj loop order keeps
// the inner loop streaming over contiguous rows of b and out, which
// matters at m=100, n=1000 experiment scales.
func mulRows(out, a, b *Dense, r0, r1 int) {
	for i := r0; i < r1; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		orow := out.data[i*out.cols : (i+1)*out.cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// Transpose returns aᵀ.
func Transpose(a *Dense) *Dense {
	out := Zeros(a.cols, a.rows)
	for i := 0; i < a.rows; i++ {
		for j := 0; j < a.cols; j++ {
			out.data[j*out.cols+i] = a.data[i*a.cols+j]
		}
	}
	return out
}

// MulVec returns the matrix-vector product a·x.
func MulVec(a *Dense, x []float64) []float64 {
	if a.cols != len(x) {
		panic(fmt.Sprintf("mat: MulVec shape mismatch %dx%d · %d", a.rows, a.cols, len(x)))
	}
	out := make([]float64, a.rows)
	for i := 0; i < a.rows; i++ {
		row := a.data[i*a.cols : (i+1)*a.cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// Dot returns the inner product of x and y.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: Dot length mismatch %d vs %d", len(x), len(y)))
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	// Scaled accumulation avoids overflow for large entries.
	var scale, ssq float64 = 0, 1
	for _, v := range x {
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// FrobeniusNorm returns the Frobenius norm of a.
func FrobeniusNorm(a *Dense) float64 { return Norm2(a.data) }

// Trace returns the trace of a square matrix.
func Trace(a *Dense) float64 {
	if a.rows != a.cols {
		panic(fmt.Sprintf("mat: Trace of non-square %dx%d", a.rows, a.cols))
	}
	var t float64
	for i := 0; i < a.rows; i++ {
		t += a.data[i*a.cols+i]
	}
	return t
}

// MaxAbs returns the largest absolute entry of a (0 for empty matrices).
func MaxAbs(a *Dense) float64 {
	var m float64
	for _, v := range a.data {
		if av := math.Abs(v); av > m {
			m = av
		}
	}
	return m
}

// AddScaledIdentity returns a + s·I for square a.
func AddScaledIdentity(a *Dense, s float64) *Dense {
	if a.rows != a.cols {
		panic(fmt.Sprintf("mat: AddScaledIdentity of non-square %dx%d", a.rows, a.cols))
	}
	out := a.Clone()
	for i := 0; i < a.rows; i++ {
		out.data[i*a.cols+i] += s
	}
	return out
}

// OuterProduct returns the |x|×|y| matrix x·yᵀ.
func OuterProduct(x, y []float64) *Dense {
	out := Zeros(len(x), len(y))
	for i, xv := range x {
		if xv == 0 {
			continue
		}
		row := out.data[i*out.cols : (i+1)*out.cols]
		for j, yv := range y {
			row[j] = xv * yv
		}
	}
	return out
}
