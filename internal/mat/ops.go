package mat

import (
	"fmt"
	"math"
)

// shapeCheck panics unless a and b have identical dimensions.
func shapeCheck(op string, a, b *Dense) {
	if a.rows != b.rows || a.cols != b.cols {
		panic(fmt.Sprintf("mat: %s shape mismatch %dx%d vs %dx%d", op, a.rows, a.cols, b.rows, b.cols))
	}
}

// Add returns a + b.
func Add(a, b *Dense) *Dense {
	shapeCheck("Add", a, b)
	out := a.Clone()
	for i, v := range b.data {
		out.data[i] += v
	}
	return out
}

// Sub returns a - b.
func Sub(a, b *Dense) *Dense {
	shapeCheck("Sub", a, b)
	out := a.Clone()
	for i, v := range b.data {
		out.data[i] -= v
	}
	return out
}

// Scale returns s * a.
func Scale(s float64, a *Dense) *Dense {
	out := a.Clone()
	for i := range out.data {
		out.data[i] *= s
	}
	return out
}

// Mul returns the matrix product a·b, computed by the blocked kernel
// layer (see gemm.go): kcBlock reduction slabs, packed 4×4 register
// tiles, large products fanned out one row block per goroutine. Every
// output element is accumulated by one goroutine in a shape-determined
// order, so the result is bit-identical at any parallelism.
func Mul(a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic(fmt.Sprintf("mat: Mul shape mismatch %dx%d · %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	return MulInto(Zeros(a.rows, b.cols), a, b)
}

// MulInto computes a·b into dst (which is zeroed first) and returns dst.
// It is the allocation-free form of Mul for callers that reuse an output
// buffer across many products of the same shape — the streaming attacks
// project one chunk after another through fixed gain matrices. dst must
// not alias a or b. The kernel and blocking are identical to Mul, so the
// result is bit-identical to the allocating path.
func MulInto(dst, a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic(fmt.Sprintf("mat: MulInto shape mismatch %dx%d · %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	if dst.rows != a.rows || dst.cols != b.cols {
		panic(fmt.Sprintf("mat: MulInto destination is %dx%d, want %dx%d", dst.rows, dst.cols, a.rows, b.cols))
	}
	if dst == a || dst == b {
		panic("mat: MulInto destination aliases an operand")
	}
	for i := range dst.data {
		dst.data[i] = 0
	}
	gemm(dst.data, a.data, b.data, a.rows, a.cols, b.cols)
	return dst
}

// Transpose returns aᵀ.
func Transpose(a *Dense) *Dense {
	out := Zeros(a.cols, a.rows)
	for i := 0; i < a.rows; i++ {
		for j := 0; j < a.cols; j++ {
			out.data[j*out.cols+i] = a.data[i*a.cols+j]
		}
	}
	return out
}

// MulVec returns the matrix-vector product a·x.
func MulVec(a *Dense, x []float64) []float64 {
	return MulVecInto(make([]float64, a.rows), a, x)
}

// MulVecInto computes a·x into dst (len Rows()) and returns dst — the
// allocation-free form for workspace-threaded callers. dst must not
// alias x.
func MulVecInto(dst []float64, a *Dense, x []float64) []float64 {
	if a.cols != len(x) {
		panic(fmt.Sprintf("mat: MulVec shape mismatch %dx%d · %d", a.rows, a.cols, len(x)))
	}
	if len(dst) != a.rows {
		panic(fmt.Sprintf("mat: MulVecInto destination length %d, want %d", len(dst), a.rows))
	}
	for i := 0; i < a.rows; i++ {
		row := a.data[i*a.cols : (i+1)*a.cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
	return dst
}

// Dot returns the inner product of x and y.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: Dot length mismatch %d vs %d", len(x), len(y)))
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	// Scaled accumulation avoids overflow for large entries.
	var scale, ssq float64 = 0, 1
	for _, v := range x {
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// FrobeniusNorm returns the Frobenius norm of a.
func FrobeniusNorm(a *Dense) float64 { return Norm2(a.data) }

// Trace returns the trace of a square matrix.
func Trace(a *Dense) float64 {
	if a.rows != a.cols {
		panic(fmt.Sprintf("mat: Trace of non-square %dx%d", a.rows, a.cols))
	}
	var t float64
	for i := 0; i < a.rows; i++ {
		t += a.data[i*a.cols+i]
	}
	return t
}

// MaxAbs returns the largest absolute entry of a (0 for empty matrices).
func MaxAbs(a *Dense) float64 {
	var m float64
	for _, v := range a.data {
		if av := math.Abs(v); av > m {
			m = av
		}
	}
	return m
}

// AddScaledIdentity returns a + s·I for square a.
func AddScaledIdentity(a *Dense, s float64) *Dense {
	if a.rows != a.cols {
		panic(fmt.Sprintf("mat: AddScaledIdentity of non-square %dx%d", a.rows, a.cols))
	}
	out := a.Clone()
	for i := 0; i < a.rows; i++ {
		out.data[i*a.cols+i] += s
	}
	return out
}

// OuterProduct returns the |x|×|y| matrix x·yᵀ.
func OuterProduct(x, y []float64) *Dense {
	out := Zeros(len(x), len(y))
	for i, xv := range x {
		if xv == 0 {
			continue
		}
		row := out.data[i*out.cols : (i+1)*out.cols]
		for j, yv := range y {
			row[j] = xv * yv
		}
	}
	return out
}
