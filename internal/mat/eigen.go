package mat

import (
	"fmt"
	"math"
	"sort"
)

// Eigen holds the eigendecomposition of a symmetric matrix A = Q·Λ·Qᵀ.
// Values are sorted in descending order and Vectors' column k is the unit
// eigenvector for Values[k].
type Eigen struct {
	// Values are the eigenvalues, largest first.
	Values []float64
	// Vectors is the orthogonal matrix of eigenvectors (one per column),
	// ordered to match Values.
	Vectors *Dense
}

// maxJacobiSweeps bounds the cyclic Jacobi iteration. Convergence for
// well-conditioned symmetric matrices is quadratic; 64 sweeps is far more
// than needed at m ≤ a few hundred and serves as a hard safety stop.
const maxJacobiSweeps = 64

// EigenSym computes the eigendecomposition of the symmetric matrix a using
// the cyclic Jacobi rotation method. The input must be symmetric; the
// strictly upper triangle is trusted (a is symmetrized internally to guard
// against small asymmetries from floating-point covariance estimation).
func EigenSym(a *Dense) (*Eigen, error) {
	n := a.rows
	if a.cols != n {
		return nil, fmt.Errorf("mat: EigenSym of non-square %dx%d matrix", a.rows, a.cols)
	}
	if n == 0 {
		return &Eigen{Values: nil, Vectors: Zeros(0, 0)}, nil
	}
	// Work on a symmetrized copy.
	w := Zeros(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			w.data[i*n+j] = 0.5 * (a.data[i*n+j] + a.data[j*n+i])
		}
	}
	v := Identity(n)
	wd, vd := w.data, v.data

	offDiag := func() float64 {
		var s float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				s += wd[i*n+j] * wd[i*n+j]
			}
		}
		return math.Sqrt(2 * s)
	}

	scale := MaxAbs(w)
	if scale == 0 {
		scale = 1
	}
	tol := 1e-14 * scale * float64(n)

	for sweep := 0; sweep < maxJacobiSweeps; sweep++ {
		if offDiag() <= tol {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := wd[p*n+q]
				if math.Abs(apq) <= 1e-300 {
					continue
				}
				app := wd[p*n+p]
				aqq := wd[q*n+q]
				// Compute the Jacobi rotation annihilating (p,q).
				theta := (aqq - app) / (2 * apq)
				var t float64
				if math.Abs(theta) > 1e154 {
					t = 1 / (2 * theta)
				} else {
					t = 1 / (math.Abs(theta) + math.Sqrt(1+theta*theta))
					if theta < 0 {
						t = -t
					}
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c

				// Update rows/cols p and q of W (symmetric rotation).
				for k := 0; k < n; k++ {
					akp := wd[k*n+p]
					akq := wd[k*n+q]
					wd[k*n+p] = c*akp - s*akq
					wd[k*n+q] = s*akp + c*akq
				}
				for k := 0; k < n; k++ {
					apk := wd[p*n+k]
					aqk := wd[q*n+k]
					wd[p*n+k] = c*apk - s*aqk
					wd[q*n+k] = s*apk + c*aqk
				}
				// Accumulate eigenvectors.
				for k := 0; k < n; k++ {
					vkp := vd[k*n+p]
					vkq := vd[k*n+q]
					vd[k*n+p] = c*vkp - s*vkq
					vd[k*n+q] = s*vkp + c*vkq
				}
			}
		}
	}

	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = wd[i*n+i]
	}
	// Sort descending, permuting eigenvector columns to match.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return vals[idx[i]] > vals[idx[j]] })
	sortedVals := make([]float64, n)
	vecs := Zeros(n, n)
	for newCol, oldCol := range idx {
		sortedVals[newCol] = vals[oldCol]
		for r := 0; r < n; r++ {
			vecs.data[r*n+newCol] = vd[r*n+oldCol]
		}
	}
	return &Eigen{Values: sortedVals, Vectors: vecs}, nil
}

// Reconstruct returns Q·Λ·Qᵀ from the decomposition — primarily a testing
// and synthesis aid (the paper builds covariance matrices exactly this way).
func (e *Eigen) Reconstruct() *Dense {
	return Mul(Mul(e.Vectors, Diag(e.Values)), Transpose(e.Vectors))
}

// TopVectors returns the n×p matrix of the first p eigenvector columns.
func (e *Eigen) TopVectors(p int) *Dense {
	n := e.Vectors.rows
	if p < 0 || p > n {
		panic(fmt.Sprintf("mat: TopVectors p=%d out of range [0,%d]", p, n))
	}
	return e.Vectors.Slice(0, n, 0, p)
}

// LargestGapSplit returns the index p that maximizes the gap
// Values[p-1]−Values[p]; the first p eigenvalues are "dominant". This is
// the principal-component selection rule used in the paper's experiments
// (footnote 1, §5.2.2). It returns len(Values) when there is no interior
// gap (n ≤ 1).
func (e *Eigen) LargestGapSplit() int {
	n := len(e.Values)
	if n <= 1 {
		return n
	}
	best, bestGap := 1, math.Inf(-1)
	for i := 1; i < n; i++ {
		if gap := e.Values[i-1] - e.Values[i]; gap > bestGap {
			bestGap = gap
			best = i
		}
	}
	return best
}

// EnergySplit returns the smallest p such that the first p eigenvalues
// capture at least frac of the total positive eigenvalue mass.
func (e *Eigen) EnergySplit(frac float64) int {
	var total float64
	for _, v := range e.Values {
		if v > 0 {
			total += v
		}
	}
	if total <= 0 {
		return len(e.Values)
	}
	var acc float64
	for i, v := range e.Values {
		if v > 0 {
			acc += v
		}
		if acc >= frac*total {
			return i + 1
		}
	}
	return len(e.Values)
}
