package mat

import (
	"fmt"
	"math"
	"sort"
)

// Eigen holds the eigendecomposition of a symmetric matrix A = Q·Λ·Qᵀ.
// Values are sorted in descending order and Vectors' column k is the unit
// eigenvector for Values[k].
type Eigen struct {
	// Values are the eigenvalues, largest first.
	Values []float64
	// Vectors is the orthogonal matrix of eigenvectors (one per column),
	// ordered to match Values.
	Vectors *Dense
}

// maxQLIterations bounds the implicit-shift QL iteration per eigenvalue.
// Wilkinson-shifted QL converges cubically — 2–3 iterations per
// eigenvalue is typical — so 50 is a hard safety stop, not a budget.
const maxQLIterations = 50

// machEps is the double-precision unit roundoff used in the QL
// deflation test.
const machEps = 2.220446049250313e-16

// EigenSym computes the eigendecomposition of the symmetric matrix a by
// Householder tridiagonalization followed by implicit-shift QL — one
// O(m³) reduction plus an O(m²)-per-eigenvalue iteration, an order of
// magnitude faster than the cyclic Jacobi method (EigenSymJacobi), which
// pays ~10 full O(m³) sweeps on the same input. The input must be
// symmetric; it is symmetrized internally to guard against small
// asymmetries from floating-point covariance estimation.
//
// EigenSymJacobi is kept as an independent fallback; the two solvers
// cross-validate to 1e-9 in the package tests.
func EigenSym(a *Dense) (*Eigen, error) { return EigenSymWS(nil, a) }

// EigenSymWS is EigenSym with every temporary — and the returned Values
// and Vectors — drawn from ws, so a caller that decomposes the same size
// repeatedly allocates nothing in steady state. The result is only valid
// until ws.Reset; callers that retain it must copy. A nil ws allocates
// normally.
func EigenSymWS(ws *Workspace, a *Dense) (*Eigen, error) {
	n := a.rows
	if a.cols != n {
		return nil, fmt.Errorf("mat: EigenSym of non-square %dx%d matrix", a.rows, a.cols)
	}
	if n == 0 {
		return &Eigen{Values: nil, Vectors: Zeros(0, 0)}, nil
	}
	// Work on a symmetrized copy; z is overwritten with the accumulated
	// orthogonal transform and ends as the eigenvector matrix.
	z := ws.Get(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			z.data[i*n+j] = 0.5 * (a.data[i*n+j] + a.data[j*n+i])
		}
	}
	d := ws.Floats(n)
	e := ws.Floats(n)
	tridiagonalize(z.data, d, e, n)
	if err := qlImplicitShift(d, e, z.data, n); err != nil {
		return nil, err
	}

	// Sort descending, permuting eigenvector columns to match. The
	// permutation is insertion-sorted in a workspace float slice (column
	// indices are small integers, exactly representable) so the solver
	// allocates nothing beyond the Eigen header in steady state.
	perm := ws.Floats(n)
	for i := range perm {
		perm[i] = float64(i)
	}
	for i := 1; i < n; i++ {
		pi := perm[i]
		key := d[int(pi)]
		j := i - 1
		for j >= 0 && d[int(perm[j])] < key {
			perm[j+1] = perm[j]
			j--
		}
		perm[j+1] = pi
	}
	vals := ws.Floats(n)
	vecs := ws.Get(n, n)
	for newCol := 0; newCol < n; newCol++ {
		oldCol := int(perm[newCol])
		vals[newCol] = d[oldCol]
		for r := 0; r < n; r++ {
			vecs.data[r*n+newCol] = z.data[r*n+oldCol]
		}
	}
	return &Eigen{Values: vals, Vectors: vecs}, nil
}

// tridiagonalize reduces the symmetric row-major n×n matrix z to
// tridiagonal form by Householder reflections, accumulating the
// orthogonal transform in z: on return d holds the diagonal, e[1..n-1]
// the subdiagonal (e[0] = 0), and z·T·zᵀ equals the original matrix.
func tridiagonalize(z []float64, d, e []float64, n int) {
	for i := n - 1; i > 0; i-- {
		l := i - 1
		var h, scale float64
		if l > 0 {
			for k := 0; k <= l; k++ {
				scale += math.Abs(z[i*n+k])
			}
			if scale == 0 {
				// The row is already tridiagonal-compatible.
				e[i] = z[i*n+l]
			} else {
				// Build the Householder vector in row i, scaled for
				// numerical safety.
				for k := 0; k <= l; k++ {
					z[i*n+k] /= scale
					h += z[i*n+k] * z[i*n+k]
				}
				f := z[i*n+l]
				g := math.Sqrt(h)
				if f > 0 {
					g = -g
				}
				e[i] = scale * g
				h -= f * g
				z[i*n+l] = f - g
				f = 0
				for j := 0; j <= l; j++ {
					z[j*n+i] = z[i*n+j] / h
					// g = (A·u)_j using the still-symmetric leading block.
					g = 0
					for k := 0; k <= j; k++ {
						g += z[j*n+k] * z[i*n+k]
					}
					for k := j + 1; k <= l; k++ {
						g += z[k*n+j] * z[i*n+k]
					}
					e[j] = g / h
					f += e[j] * z[i*n+j]
				}
				// Rank-2 update A ← A − u·pᵀ − p·uᵀ.
				hh := f / (h + h)
				for j := 0; j <= l; j++ {
					f = z[i*n+j]
					g = e[j] - hh*f
					e[j] = g
					for k := 0; k <= j; k++ {
						z[j*n+k] -= f*e[k] + g*z[i*n+k]
					}
				}
			}
		} else {
			e[i] = z[i*n+l]
		}
		d[i] = h
	}
	d[0] = 0
	e[0] = 0
	// Accumulate the product of the Householder reflections.
	for i := 0; i < n; i++ {
		l := i - 1
		if d[i] != 0 {
			for j := 0; j <= l; j++ {
				var g float64
				for k := 0; k <= l; k++ {
					g += z[i*n+k] * z[k*n+j]
				}
				for k := 0; k <= l; k++ {
					z[k*n+j] -= g * z[k*n+i]
				}
			}
		}
		d[i] = z[i*n+i]
		z[i*n+i] = 1
		for j := 0; j <= l; j++ {
			z[j*n+i] = 0
			z[i*n+j] = 0
		}
	}
}

// qlImplicitShift diagonalizes the symmetric tridiagonal matrix (d, e)
// by the QL algorithm with implicit Wilkinson shifts, rotating the
// columns of z along so z ends as the eigenvector matrix of the original
// input. d[0..n-1] holds the (unsorted) eigenvalues on return.
func qlImplicitShift(d, e, z []float64, n int) error {
	for i := 1; i < n; i++ {
		e[i-1] = e[i]
	}
	e[n-1] = 0
	for l := 0; l < n; l++ {
		iter := 0
		for {
			// Find the first negligible subdiagonal at or after l; the
			// block [l, m] is what the shift works on.
			m := l
			for ; m < n-1; m++ {
				dd := math.Abs(d[m]) + math.Abs(d[m+1])
				if math.Abs(e[m]) <= machEps*dd {
					break
				}
			}
			if m == l {
				break // d[l] converged
			}
			iter++
			if iter > maxQLIterations {
				return fmt.Errorf("mat: EigenSym QL failed to converge for eigenvalue %d after %d iterations", l, maxQLIterations)
			}
			// Wilkinson shift from the trailing 2×2 of the block.
			g := (d[l+1] - d[l]) / (2 * e[l])
			r := math.Hypot(g, 1)
			g = d[m] - d[l] + e[l]/(g+math.Copysign(r, g))
			s, c, p := 1.0, 1.0, 0.0
			underflow := false
			// One implicit QL sweep: a chain of Givens rotations from
			// the bottom of the block back to l.
			for i := m - 1; i >= l; i-- {
				f := s * e[i]
				b := c * e[i]
				r = math.Hypot(f, g)
				e[i+1] = r
				if r == 0 {
					// A rotation annihilated the subdiagonal early:
					// deflate and restart the sweep.
					d[i+1] -= p
					e[m] = 0
					underflow = true
					break
				}
				s = f / r
				c = g / r
				g = d[i+1] - p
				r = (d[i]-g)*s + 2*c*b
				p = s * r
				d[i+1] = g + p
				g = c*r - b
				// Apply the rotation to eigenvector columns i, i+1.
				for k := 0; k < n; k++ {
					f = z[k*n+i+1]
					z[k*n+i+1] = s*z[k*n+i] + c*f
					z[k*n+i] = c*z[k*n+i] - s*f
				}
			}
			if underflow {
				continue
			}
			d[l] -= p
			e[l] = g
			e[m] = 0
		}
	}
	return nil
}

// maxJacobiSweeps bounds the cyclic Jacobi iteration. Convergence for
// well-conditioned symmetric matrices is quadratic; 64 sweeps is far more
// than needed at m ≤ a few hundred and serves as a hard safety stop.
const maxJacobiSweeps = 64

// EigenSymJacobi computes the eigendecomposition of the symmetric matrix
// a using the cyclic Jacobi rotation method. It is the pre-PR-4 solver,
// kept as an independent reference implementation: it costs ~10 full
// O(m³) sweeps where EigenSym pays one O(m³) Householder reduction, but
// its rotations are applied directly to the input, so the package tests
// cross-validate the two to 1e-9. The input must be symmetric; the
// strictly upper triangle is trusted (a is symmetrized internally to
// guard against small asymmetries from floating-point covariance
// estimation).
func EigenSymJacobi(a *Dense) (*Eigen, error) {
	n := a.rows
	if a.cols != n {
		return nil, fmt.Errorf("mat: EigenSymJacobi of non-square %dx%d matrix", a.rows, a.cols)
	}
	if n == 0 {
		return &Eigen{Values: nil, Vectors: Zeros(0, 0)}, nil
	}
	// Work on a symmetrized copy.
	w := Zeros(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			w.data[i*n+j] = 0.5 * (a.data[i*n+j] + a.data[j*n+i])
		}
	}
	v := Identity(n)
	wd, vd := w.data, v.data

	offDiag := func() float64 {
		var s float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				s += wd[i*n+j] * wd[i*n+j]
			}
		}
		return math.Sqrt(2 * s)
	}

	scale := MaxAbs(w)
	if scale == 0 {
		scale = 1
	}
	tol := 1e-14 * scale * float64(n)

	for sweep := 0; sweep < maxJacobiSweeps; sweep++ {
		if offDiag() <= tol {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := wd[p*n+q]
				if math.Abs(apq) <= 1e-300 {
					continue
				}
				app := wd[p*n+p]
				aqq := wd[q*n+q]
				// Compute the Jacobi rotation annihilating (p,q).
				theta := (aqq - app) / (2 * apq)
				var t float64
				if math.Abs(theta) > 1e154 {
					t = 1 / (2 * theta)
				} else {
					t = 1 / (math.Abs(theta) + math.Sqrt(1+theta*theta))
					if theta < 0 {
						t = -t
					}
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c

				// Update rows/cols p and q of W (symmetric rotation).
				for k := 0; k < n; k++ {
					akp := wd[k*n+p]
					akq := wd[k*n+q]
					wd[k*n+p] = c*akp - s*akq
					wd[k*n+q] = s*akp + c*akq
				}
				for k := 0; k < n; k++ {
					apk := wd[p*n+k]
					aqk := wd[q*n+k]
					wd[p*n+k] = c*apk - s*aqk
					wd[q*n+k] = s*apk + c*aqk
				}
				// Accumulate eigenvectors.
				for k := 0; k < n; k++ {
					vkp := vd[k*n+p]
					vkq := vd[k*n+q]
					vd[k*n+p] = c*vkp - s*vkq
					vd[k*n+q] = s*vkp + c*vkq
				}
			}
		}
	}

	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = wd[i*n+i]
	}
	// Sort descending, permuting eigenvector columns to match.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return vals[idx[i]] > vals[idx[j]] })
	sortedVals := make([]float64, n)
	vecs := Zeros(n, n)
	for newCol, oldCol := range idx {
		sortedVals[newCol] = vals[oldCol]
		for r := 0; r < n; r++ {
			vecs.data[r*n+newCol] = vd[r*n+oldCol]
		}
	}
	return &Eigen{Values: sortedVals, Vectors: vecs}, nil
}

// Reconstruct returns Q·Λ·Qᵀ from the decomposition — primarily a testing
// and synthesis aid (the paper builds covariance matrices exactly this
// way). The product is formed as (Q·Λ)·Qᵀ through the transpose-free
// kernel, so no Qᵀ temporary is materialized. A truncated decomposition
// (n×p Vectors with the p matching Values) yields the rank-p
// reconstruction.
func (e *Eigen) Reconstruct() *Dense {
	n, p := e.Vectors.Dims()
	return e.reconstructInto(Zeros(n, n), Zeros(n, p))
}

// ReconstructWS is Reconstruct with the result and scratch drawn from ws
// (valid until ws.Reset).
func (e *Eigen) ReconstructWS(ws *Workspace) *Dense {
	n, p := e.Vectors.Dims()
	return e.reconstructInto(ws.Get(n, n), ws.Get(n, p))
}

func (e *Eigen) reconstructInto(dst, scratch *Dense) *Dense {
	n, p := e.Vectors.Dims()
	// scratch = Q·Λ (column scaling), dst = scratch·Qᵀ.
	for i := 0; i < n; i++ {
		src := e.Vectors.data[i*p : (i+1)*p]
		row := scratch.data[i*p : (i+1)*p]
		for j, v := range src {
			row[j] = v * e.Values[j]
		}
	}
	return MulABTInto(dst, scratch, e.Vectors)
}

// TopVectors returns the n×p matrix of the first p eigenvector columns.
func (e *Eigen) TopVectors(p int) *Dense {
	n := e.Vectors.rows
	if p < 0 || p > n {
		panic(fmt.Sprintf("mat: TopVectors p=%d out of range [0,%d]", p, n))
	}
	return e.Vectors.Slice(0, n, 0, p)
}

// TopVectorsWS is TopVectors with the copy drawn from ws (valid until
// ws.Reset).
func (e *Eigen) TopVectorsWS(ws *Workspace, p int) *Dense {
	n := e.Vectors.rows
	if p < 0 || p > n {
		panic(fmt.Sprintf("mat: TopVectors p=%d out of range [0,%d]", p, n))
	}
	out := ws.Get(n, p)
	for i := 0; i < n; i++ {
		copy(out.data[i*p:(i+1)*p], e.Vectors.data[i*n:i*n+p])
	}
	return out
}

// LargestGapSplit returns the index p that maximizes the gap
// Values[p-1]−Values[p]; the first p eigenvalues are "dominant". This is
// the principal-component selection rule used in the paper's experiments
// (footnote 1, §5.2.2). It returns len(Values) when there is no interior
// gap (n ≤ 1).
func (e *Eigen) LargestGapSplit() int {
	n := len(e.Values)
	if n <= 1 {
		return n
	}
	best, bestGap := 1, math.Inf(-1)
	for i := 1; i < n; i++ {
		if gap := e.Values[i-1] - e.Values[i]; gap > bestGap {
			bestGap = gap
			best = i
		}
	}
	return best
}

// EnergySplit returns the smallest p such that the first p eigenvalues
// capture at least frac of the total positive eigenvalue mass.
func (e *Eigen) EnergySplit(frac float64) int {
	var total float64
	for _, v := range e.Values {
		if v > 0 {
			total += v
		}
	}
	if total <= 0 {
		return len(e.Values)
	}
	var acc float64
	for i, v := range e.Values {
		if v > 0 {
			acc += v
		}
		if acc >= frac*total {
			return i + 1
		}
	}
	return len(e.Values)
}
