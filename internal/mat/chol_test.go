package mat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomSPD returns a random symmetric positive definite n×n matrix.
func randomSPD(n int, rng *rand.Rand) *Dense {
	a := randomMatrix(n, n, rng)
	spd := Mul(Transpose(a), a)
	// Shift the spectrum away from zero so Cholesky is well-conditioned.
	return AddScaledIdentity(spd, 0.5)
}

func TestCholeskyKnown(t *testing.T) {
	// A = [[4,2],[2,3]] → L = [[2,0],[1,sqrt(2)]]
	a := New(2, 2, []float64{4, 2, 2, 3})
	ch, err := FactorizeCholesky(a)
	if err != nil {
		t.Fatalf("FactorizeCholesky: %v", err)
	}
	l := ch.L()
	if math.Abs(l.At(0, 0)-2) > 1e-12 || math.Abs(l.At(1, 0)-1) > 1e-12 ||
		math.Abs(l.At(1, 1)-math.Sqrt2) > 1e-12 || l.At(0, 1) != 0 {
		t.Errorf("L = %v", l)
	}
}

// Property: L·Lᵀ reconstructs A.
func TestCholeskyReconstructProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		a := randomSPD(n, rng)
		ch, err := FactorizeCholesky(a)
		if err != nil {
			return false
		}
		l := ch.L()
		return Mul(l, Transpose(l)).EqualApprox(a, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := New(2, 2, []float64{1, 2, 2, 1}) // eigenvalues 3, -1
	_, err := FactorizeCholesky(a)
	if !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("err = %v, want ErrNotPositiveDefinite", err)
	}
}

func TestCholeskyNonSquare(t *testing.T) {
	if _, err := FactorizeCholesky(Zeros(2, 3)); err == nil {
		t.Fatal("Cholesky of non-square matrix must error")
	}
}

func TestCholeskySolve(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomSPD(6, rng)
	ch, err := FactorizeCholesky(a)
	if err != nil {
		t.Fatalf("FactorizeCholesky: %v", err)
	}
	b := make([]float64, 6)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x, err := ch.SolveVec(b)
	if err != nil {
		t.Fatalf("SolveVec: %v", err)
	}
	ax := MulVec(a, x)
	for i := range ax {
		if math.Abs(ax[i]-b[i]) > 1e-9 {
			t.Fatalf("residual[%d] = %v", i, ax[i]-b[i])
		}
	}
}

func TestCholeskyLMulVec(t *testing.T) {
	a := New(2, 2, []float64{4, 2, 2, 3})
	ch, _ := FactorizeCholesky(a)
	got := ch.LMulVec([]float64{1, 1})
	l := ch.L()
	want := MulVec(l, []float64{1, 1})
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-14 {
			t.Errorf("LMulVec[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestCholeskyLogDet(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randomSPD(5, rng)
	ch, err := FactorizeCholesky(a)
	if err != nil {
		t.Fatalf("FactorizeCholesky: %v", err)
	}
	want := math.Log(Det(a))
	if got := ch.LogDet(); math.Abs(got-want) > 1e-8 {
		t.Errorf("LogDet = %v, want %v", got, want)
	}
}

func TestInverseSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randomSPD(7, rng)
	inv, err := InverseSPD(a)
	if err != nil {
		t.Fatalf("InverseSPD: %v", err)
	}
	if !Mul(a, inv).EqualApprox(Identity(7), 1e-8) {
		t.Error("A·A⁻¹ != I for InverseSPD")
	}
}

func TestInverseSPDFallsBackToLU(t *testing.T) {
	// Symmetric but indefinite: Cholesky fails, LU fallback must succeed.
	a := New(2, 2, []float64{1, 2, 2, 1})
	inv, err := InverseSPD(a)
	if err != nil {
		t.Fatalf("InverseSPD fallback: %v", err)
	}
	if !Mul(a, inv).EqualApprox(Identity(2), 1e-10) {
		t.Error("fallback inverse incorrect")
	}
}
