package mat

import (
	"math"
	"testing"
)

func TestNewAndAccessors(t *testing.T) {
	m := New(2, 3, []float64{1, 2, 3, 4, 5, 6})
	if r, c := m.Dims(); r != 2 || c != 3 {
		t.Fatalf("Dims = (%d,%d), want (2,3)", r, c)
	}
	if got := m.At(0, 0); got != 1 {
		t.Errorf("At(0,0) = %v, want 1", got)
	}
	if got := m.At(1, 2); got != 6 {
		t.Errorf("At(1,2) = %v, want 6", got)
	}
	m.Set(1, 0, -7)
	if got := m.At(1, 0); got != -7 {
		t.Errorf("after Set, At(1,0) = %v, want -7", got)
	}
}

func TestNewNilDataAllocates(t *testing.T) {
	m := New(3, 2, nil)
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("New(3,2,nil) not zeroed at (%d,%d)", i, j)
			}
		}
	}
}

func TestNewPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with mismatched data length did not panic")
		}
	}()
	New(2, 2, []float64{1, 2, 3})
}

func TestAtPanicsOutOfRange(t *testing.T) {
	m := Zeros(2, 2)
	for _, idx := range [][2]int{{-1, 0}, {0, -1}, {2, 0}, {0, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%d,%d) did not panic", idx[0], idx[1])
				}
			}()
			m.At(idx[0], idx[1])
		}()
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if got := id.At(i, j); got != want {
				t.Errorf("Identity(4)[%d][%d] = %v, want %v", i, j, got, want)
			}
		}
	}
}

func TestDiag(t *testing.T) {
	d := Diag([]float64{2, 5, -1})
	if d.Rows() != 3 || d.Cols() != 3 {
		t.Fatalf("Diag dims = %dx%d, want 3x3", d.Rows(), d.Cols())
	}
	if d.At(1, 1) != 5 || d.At(0, 1) != 0 || d.At(2, 2) != -1 {
		t.Errorf("Diag entries wrong: %v", d)
	}
}

func TestNewFromRows(t *testing.T) {
	m := NewFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows() != 3 || m.Cols() != 2 {
		t.Fatalf("dims %dx%d, want 3x2", m.Rows(), m.Cols())
	}
	if m.At(2, 1) != 6 {
		t.Errorf("At(2,1) = %v, want 6", m.At(2, 1))
	}
}

func TestNewFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged NewFromRows did not panic")
		}
	}()
	NewFromRows([][]float64{{1, 2}, {3}})
}

func TestRowColCopies(t *testing.T) {
	m := New(2, 2, []float64{1, 2, 3, 4})
	r := m.Row(0)
	r[0] = 100
	if m.At(0, 0) != 1 {
		t.Error("Row must return a copy")
	}
	c := m.Col(1)
	c[0] = 100
	if m.At(0, 1) != 2 {
		t.Error("Col must return a copy")
	}
}

func TestRawRowAliases(t *testing.T) {
	m := New(2, 2, []float64{1, 2, 3, 4})
	m.RawRow(1)[0] = 42
	if m.At(1, 0) != 42 {
		t.Error("RawRow must alias storage")
	}
}

func TestSetRowSetCol(t *testing.T) {
	m := Zeros(2, 3)
	m.SetRow(1, []float64{7, 8, 9})
	if m.At(1, 2) != 9 {
		t.Errorf("SetRow failed: %v", m)
	}
	m.SetCol(0, []float64{4, 5})
	if m.At(0, 0) != 4 || m.At(1, 0) != 5 {
		t.Errorf("SetCol failed: %v", m)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := New(1, 2, []float64{1, 2})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Error("Clone shares storage with original")
	}
}

func TestEqualApprox(t *testing.T) {
	a := New(1, 2, []float64{1, 2})
	b := New(1, 2, []float64{1 + 1e-12, 2 - 1e-12})
	if !a.EqualApprox(b, 1e-9) {
		t.Error("EqualApprox(1e-9) should accept 1e-12 perturbations")
	}
	if a.EqualApprox(b, 1e-15) {
		t.Error("EqualApprox(1e-15) should reject 1e-12 perturbations")
	}
	c := New(2, 1, []float64{1, 2})
	if a.EqualApprox(c, 1) {
		t.Error("EqualApprox must reject shape mismatches")
	}
}

func TestIsSymmetric(t *testing.T) {
	s := New(2, 2, []float64{1, 3, 3, 2})
	if !s.IsSymmetric(0) {
		t.Error("symmetric matrix reported as asymmetric")
	}
	a := New(2, 2, []float64{1, 3, 4, 2})
	if a.IsSymmetric(0.5) {
		t.Error("asymmetric matrix reported as symmetric")
	}
	r := Zeros(2, 3)
	if r.IsSymmetric(1) {
		t.Error("non-square matrix cannot be symmetric")
	}
}

func TestSlice(t *testing.T) {
	m := New(3, 3, []float64{1, 2, 3, 4, 5, 6, 7, 8, 9})
	s := m.Slice(1, 3, 0, 2)
	want := New(2, 2, []float64{4, 5, 7, 8})
	if !s.Equal(want) {
		t.Errorf("Slice = %v, want %v", s, want)
	}
	// Copies, not views.
	s.Set(0, 0, 99)
	if m.At(1, 0) != 4 {
		t.Error("Slice must copy")
	}
}

func TestColsSlice(t *testing.T) {
	m := New(2, 3, []float64{1, 2, 3, 4, 5, 6})
	s := m.ColsSlice(2)
	want := New(2, 2, []float64{1, 2, 4, 5})
	if !s.Equal(want) {
		t.Errorf("ColsSlice = %v, want %v", s, want)
	}
}

func TestStringDoesNotPanic(t *testing.T) {
	big := Zeros(20, 20)
	if s := big.String(); len(s) == 0 {
		t.Error("String() returned empty")
	}
	if s := Zeros(0, 0).String(); len(s) == 0 {
		t.Error("String() of empty matrix returned empty")
	}
}

func TestMaxAbs(t *testing.T) {
	m := New(2, 2, []float64{-5, 2, 3, 4})
	if got := MaxAbs(m); got != 5 {
		t.Errorf("MaxAbs = %v, want 5", got)
	}
	if got := MaxAbs(Zeros(0, 0)); got != 0 {
		t.Errorf("MaxAbs(empty) = %v, want 0", got)
	}
}

func TestTrace(t *testing.T) {
	m := New(2, 2, []float64{1, 9, 9, 3})
	if got := Trace(m); got != 4 {
		t.Errorf("Trace = %v, want 4", got)
	}
}

func TestNorm2Overflow(t *testing.T) {
	x := []float64{1e308, 1e308}
	got := Norm2(x)
	want := 1e308 * math.Sqrt2
	if math.IsInf(got, 0) || math.Abs(got-want)/want > 1e-12 {
		t.Errorf("Norm2 overflow-safe path: got %v, want %v", got, want)
	}
}
