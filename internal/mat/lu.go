package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a factorization or solve encounters a
// (numerically) singular matrix.
var ErrSingular = errors.New("mat: matrix is singular")

// LU holds an LU factorization with partial pivoting: P·A = L·U, where L is
// unit lower triangular and U is upper triangular, packed into lu.
type LU struct {
	lu    *Dense
	pivot []int // pivot[i] = row swapped into position i at step i
	sign  int   // determinant sign from row swaps
}

// FactorizeLU computes the LU factorization of square a with partial
// pivoting. It returns ErrSingular when a pivot underflows to zero.
func FactorizeLU(a *Dense) (*LU, error) {
	n := a.rows
	if a.cols != n {
		return nil, fmt.Errorf("mat: LU of non-square %dx%d matrix", a.rows, a.cols)
	}
	lu := a.Clone()
	pivot := make([]int, n)
	sign := 1
	d := lu.data
	for k := 0; k < n; k++ {
		// Find pivot row.
		p := k
		maxAbs := math.Abs(d[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(d[i*n+k]); v > maxAbs {
				maxAbs = v
				p = i
			}
		}
		pivot[k] = p
		if p != k {
			for j := 0; j < n; j++ {
				d[k*n+j], d[p*n+j] = d[p*n+j], d[k*n+j]
			}
			sign = -sign
		}
		pv := d[k*n+k]
		if pv == 0 {
			return nil, ErrSingular
		}
		for i := k + 1; i < n; i++ {
			l := d[i*n+k] / pv
			d[i*n+k] = l
			if l == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				d[i*n+j] -= l * d[k*n+j]
			}
		}
	}
	return &LU{lu: lu, pivot: pivot, sign: sign}, nil
}

// Det returns the determinant of the factorized matrix.
func (f *LU) Det() float64 {
	n := f.lu.rows
	det := float64(f.sign)
	for i := 0; i < n; i++ {
		det *= f.lu.data[i*n+i]
	}
	return det
}

// SolveVec solves A·x = b for x.
func (f *LU) SolveVec(b []float64) ([]float64, error) {
	n := f.lu.rows
	if len(b) != n {
		return nil, fmt.Errorf("mat: SolveVec rhs length %d, want %d", len(b), n)
	}
	x := make([]float64, n)
	copy(x, b)
	d := f.lu.data
	// Apply row swaps.
	for k := 0; k < n; k++ {
		if p := f.pivot[k]; p != k {
			x[k], x[p] = x[p], x[k]
		}
	}
	// Forward substitution with unit-diagonal L.
	for i := 1; i < n; i++ {
		var s float64
		for j := 0; j < i; j++ {
			s += d[i*n+j] * x[j]
		}
		x[i] -= s
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		var s float64
		for j := i + 1; j < n; j++ {
			s += d[i*n+j] * x[j]
		}
		piv := d[i*n+i]
		if piv == 0 {
			return nil, ErrSingular
		}
		x[i] = (x[i] - s) / piv
	}
	return x, nil
}

// Solve solves A·X = B column-by-column.
func (f *LU) Solve(b *Dense) (*Dense, error) {
	n := f.lu.rows
	if b.rows != n {
		return nil, fmt.Errorf("mat: Solve rhs has %d rows, want %d", b.rows, n)
	}
	out := Zeros(n, b.cols)
	for j := 0; j < b.cols; j++ {
		col, err := f.SolveVec(b.Col(j))
		if err != nil {
			return nil, err
		}
		out.SetCol(j, col)
	}
	return out, nil
}

// Inverse returns A⁻¹ via the LU factorization.
func Inverse(a *Dense) (*Dense, error) {
	f, err := FactorizeLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(Identity(a.rows))
}

// Det returns the determinant of square a (0 when singular).
func Det(a *Dense) float64 {
	f, err := FactorizeLU(a)
	if err != nil {
		return 0
	}
	return f.Det()
}

// SolveVec solves a·x = b for a single right-hand side.
func SolveVec(a *Dense, b []float64) ([]float64, error) {
	f, err := FactorizeLU(a)
	if err != nil {
		return nil, err
	}
	return f.SolveVec(b)
}
