package mat

import (
	"math/rand"
	"testing"
)

func TestAppendRows(t *testing.T) {
	acc := &Dense{}
	a := NewFromRows([][]float64{{1, 2}, {3, 4}})
	b := NewFromRows([][]float64{{5, 6}})
	acc.AppendRows(a)
	acc.AppendRows(b)
	want := NewFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if !acc.Equal(want) {
		t.Fatalf("AppendRows = %v, want %v", acc, want)
	}
	// Appending must copy: mutating the source must not change the accumulator.
	a.Set(0, 0, 99)
	if acc.At(0, 0) != 1 {
		t.Fatal("AppendRows aliased the source storage")
	}
	// Zero-row appends keep the shape.
	acc.AppendRows(Zeros(0, 2))
	if r, c := acc.Dims(); r != 3 || c != 2 {
		t.Fatalf("dims after empty append = %dx%d, want 3x2", r, c)
	}
}

func TestAppendRowsAdoptsColumns(t *testing.T) {
	acc := Zeros(0, 0)
	acc.AppendRows(NewFromRows([][]float64{{1, 2, 3}}))
	if r, c := acc.Dims(); r != 1 || c != 3 {
		t.Fatalf("dims = %dx%d, want 1x3", r, c)
	}
}

func TestAppendRowsMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched column count must panic")
		}
	}()
	acc := Zeros(1, 2)
	acc.AppendRows(Zeros(1, 3))
}

func TestMulIntoMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, dims := range [][3]int{{3, 4, 5}, {117, 64, 33}, {1, 1, 1}} {
		a, b := Zeros(dims[0], dims[1]), Zeros(dims[1], dims[2])
		for _, m := range []*Dense{a, b} {
			raw := m.Raw()
			for i := range raw {
				raw[i] = rng.NormFloat64()
			}
		}
		want := Mul(a, b)
		dst := Zeros(dims[0], dims[2])
		// Pre-poison the destination: MulInto must fully overwrite it.
		for i := range dst.Raw() {
			dst.Raw()[i] = 1e300
		}
		if got := MulInto(dst, a, b); !got.Equal(want) {
			t.Fatalf("MulInto differs from Mul at dims %v", dims)
		}
	}
}

func TestMulIntoAliasPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("aliased destination must panic")
		}
	}()
	a := Identity(3)
	MulInto(a, a, Identity(3))
}
