package mat

import "fmt"

// This file is the blocked GEMM kernel layer. Every dense product in the
// library — plain A·B, the transpose-free A·Bᵀ and Aᵀ·B forms, and the
// symmetric rank-k Gram update Aᵀ·A — funnels into one register-tiled
// micro-kernel design:
//
//   - the k (reduction) dimension is cut into fixed kcBlock slabs so the
//     operand panels live in cache while they are reused;
//   - within a slab, output is produced in mr×nr = 2×4 register tiles;
//     the B panel of a tile column is packed into a small contiguous
//     k-major buffer once per slab and reused by every tile row, so the
//     innermost loop streams adjacent floats and keeps all 8 accumulators
//     plus the 6 operand values in registers (14 of amd64's 16 float
//     registers — a 4×4 tile's 24 live values would spill);
//   - there is no zero-skip branch: the branch predictor cost and the
//     value-dependent instruction stream of the old ikj kernel are gone.
//
// Determinism contract: every output element is accumulated by exactly
// one goroutine, in an order fixed by the operand shapes alone (k-slab
// order, then sequentially within a slab). Worker count and row-range
// splits never change any element's summation tree, so results are
// bit-identical at any parallelism. The blocked accumulation order does
// differ from the old streaming-ikj kernel in the last bits; goldens that
// pin printed digits were regenerated when this layer landed (PR 4).

const (
	// mr×nr is the register tile shape (see the register-budget note
	// above).
	mr = 2
	nr = 4
	// kcBlock is the reduction-slab depth: the packed kc×4 B panel
	// (4·256·8 = 8 KiB) stays resident in L1 while a row range reuses
	// it, and the A row band stays in L2.
	kcBlock = 256
	// gemmParallelMinFlops is the multiply-add count above which a
	// product fans out across goroutines; below it the fork/join
	// overhead exceeds the arithmetic.
	gemmParallelMinFlops = 1 << 20
)

// aRowPair returns the two [k0,k1) segments of consecutive A rows
// starting at i0, aliasing row i0 when a ragged edge tile has only one
// row: the micro-kernels stay branch-free and the duplicated result is
// simply not written back.
func aRowPair(a []float64, lda, i0, rows, k0, k1 int) (a0, a1 []float64) {
	a0 = a[i0*lda+k0 : i0*lda+k1]
	a1 = a0
	if rows > 1 {
		a1 = a[(i0+1)*lda+k0 : (i0+1)*lda+k1]
	}
	return a0, a1
}

// gemmRows computes dst[r0:r1, :] += a[r0:r1, :]·b for row-major
// operands; it is the per-worker body of gemm. For each reduction slab,
// each kc×4 column panel of B is packed k-major once and reused by every
// tile row in the range; A needs no packing — its row segments are
// already contiguous along k.
func gemmRows(dst, a, b []float64, m, k, n, r0, r1 int, packB []float64) {
	for k0 := 0; k0 < k; k0 += kcBlock {
		k1 := k0 + kcBlock
		if k1 > k {
			k1 = k
		}
		kc := k1 - k0
		for j0 := 0; j0 < n; j0 += nr {
			cols := n - j0
			if cols > nr {
				cols = nr
			}
			if cols == nr {
				for kk := 0; kk < kc; kk++ {
					bs := b[(k0+kk)*n+j0 : (k0+kk)*n+j0+nr]
					pq := packB[kk*nr : kk*nr+nr]
					pq[0] = bs[0]
					pq[1] = bs[1]
					pq[2] = bs[2]
					pq[3] = bs[3]
				}
			}
			for i0 := r0; i0 < r1; i0 += mr {
				rows := r1 - i0
				if rows > mr {
					rows = mr
				}
				a0, a1 := aRowPair(a, k, i0, rows, k0, k1)
				if cols == nr {
					microKernel2x4(dst, a0, a1, packB, n, i0, j0, rows)
				} else {
					microKernelEdge(dst, a0, a1, b, k0, i0, j0, rows, cols, n)
				}
			}
		}
	}
}

// microKernel2x4 accumulates a full-width 2×4 tile of dst: a0 and a1 are
// the [k0,k1) segments of two A rows, pb the packed kc×4 B panel
// (pb[4k..4k+3] holds the four B columns at depth k). All 8 partial sums
// live in registers for the whole k loop.
func microKernel2x4(dst, a0, a1, pb []float64, n, i0, j0, rows int) {
	var c00, c01, c02, c03 float64
	var c10, c11, c12, c13 float64
	a1 = a1[:len(a0)]
	pb = pb[:len(a0)*nr]
	for kk, av0 := range a0 {
		bq := pb[kk*nr : kk*nr+nr]
		b0, b1, b2, b3 := bq[0], bq[1], bq[2], bq[3]
		av1 := a1[kk]
		c00 += av0 * b0
		c01 += av0 * b1
		c02 += av0 * b2
		c03 += av0 * b3
		c10 += av1 * b0
		c11 += av1 * b1
		c12 += av1 * b2
		c13 += av1 * b3
	}
	writeTile(dst, n, i0, j0, rows, nr, c00, c01, c02, c03, c10, c11, c12, c13)
}

// microKernelEdge handles the ragged final tile columns (cols < nr),
// reading B in place. The per-element k order is identical to the packed
// kernel's, so edge elements obey the same determinism contract.
func microKernelEdge(dst, a0, a1, b []float64, k0, i0, j0, rows, cols, n int) {
	a1 = a1[:len(a0)]
	for jj := 0; jj < cols; jj++ {
		var c0, c1 float64
		for kk := range a0 {
			bv := b[(k0+kk)*n+j0+jj]
			c0 += a0[kk] * bv
			c1 += a1[kk] * bv
		}
		dst[i0*n+j0+jj] += c0
		if rows > 1 {
			dst[(i0+1)*n+j0+jj] += c1
		}
	}
}

// writeTile adds the register tile into dst, clipped to rows×cols.
func writeTile(dst []float64, n, i0, j0, rows, cols int,
	c00, c01, c02, c03,
	c10, c11, c12, c13 float64) {
	row := dst[i0*n+j0:]
	row[0] += c00
	if cols > 1 {
		row[1] += c01
	}
	if cols > 2 {
		row[2] += c02
	}
	if cols > 3 {
		row[3] += c03
	}
	if rows > 1 {
		row = dst[(i0+1)*n+j0:]
		row[0] += c10
		if cols > 1 {
			row[1] += c11
		}
		if cols > 2 {
			row[2] += c12
		}
		if cols > 3 {
			row[3] += c13
		}
	}
}

// gemm computes dst += a·b (all row-major, shapes m×k · k×n → m×n),
// fanning out across row blocks when the product is large enough. The
// per-worker B pack buffer is a fixed-size stack allocation, so gemm
// itself never allocates on the heap.
func gemm(dst, a, b []float64, m, k, n int) {
	if m == 0 || n == 0 || k == 0 {
		return
	}
	workers := 1
	if flops := int64(m) * int64(k) * int64(n); flops >= gemmParallelMinFlops {
		workers = maxWorkers()
	}
	if workers <= 1 {
		// Direct call: no closure, and the pack buffer stays on the
		// caller's stack — steady-state products allocate nothing.
		var packB [nr * kcBlock]float64
		gemmRows(dst, a, b, m, k, n, 0, m, packB[:])
		return
	}
	parallelRows(m, workers, func(r0, r1 int) {
		var packB [nr * kcBlock]float64
		gemmRows(dst, a, b, m, k, n, r0, r1, packB[:])
	})
}

// MulABT returns a·bᵀ for a (m×k) and b (n×k): the transpose-free form of
// Mul(a, Transpose(b)).
func MulABT(a, b *Dense) *Dense {
	if a.cols != b.cols {
		panic(fmt.Sprintf("mat: MulABT shape mismatch %dx%d · (%dx%d)ᵀ", a.rows, a.cols, b.rows, b.cols))
	}
	return MulABTInto(Zeros(a.rows, b.rows), a, b)
}

// MulABTInto computes a·bᵀ into dst (zeroed first) and returns dst. Both
// operands are walked along their contiguous rows — the product never
// materializes bᵀ, which is what lets the attack pipelines drop their
// Transpose temporaries. dst must not alias a or b.
func MulABTInto(dst, a, b *Dense) *Dense {
	if a.cols != b.cols {
		panic(fmt.Sprintf("mat: MulABTInto shape mismatch %dx%d · (%dx%d)ᵀ", a.rows, a.cols, b.rows, b.cols))
	}
	if dst.rows != a.rows || dst.cols != b.rows {
		panic(fmt.Sprintf("mat: MulABTInto destination is %dx%d, want %dx%d", dst.rows, dst.cols, a.rows, b.rows))
	}
	if dst == a || dst == b {
		panic("mat: MulABTInto destination aliases an operand")
	}
	for i := range dst.data {
		dst.data[i] = 0
	}
	m, k, n := a.rows, a.cols, b.rows
	if m == 0 || n == 0 || k == 0 {
		return dst
	}
	workers := 1
	if flops := int64(m) * int64(k) * int64(n); flops >= gemmParallelMinFlops {
		workers = maxWorkers()
	}
	ad, bd, dd := a.data, b.data, dst.data
	if workers <= 1 {
		mulABTRows(dd, ad, bd, k, n, 0, m)
		return dst
	}
	parallelRows(m, workers, func(r0, r1 int) {
		mulABTRows(dd, ad, bd, k, n, r0, r1)
	})
	return dst
}

// mulABTRows computes dst[r0:r1, :] += a[r0:r1, :]·bᵀ. Rows of a and b
// are both contiguous dot-product operands, so no packing is needed: the
// 2×4 tile loop reads two a rows and four b rows in lockstep.
func mulABTRows(dst, a, b []float64, k, n, r0, r1 int) {
	for k0 := 0; k0 < k; k0 += kcBlock {
		k1 := k0 + kcBlock
		if k1 > k {
			k1 = k
		}
		for j0 := 0; j0 < n; j0 += nr {
			cols := n - j0
			if cols > nr {
				cols = nr
			}
			for i0 := r0; i0 < r1; i0 += mr {
				rows := r1 - i0
				if rows > mr {
					rows = mr
				}
				dotTile(dst, a, b, k, n, i0, j0, rows, cols, k0, k1)
			}
		}
	}
}

// dotTile accumulates the rows×cols (≤2×4) tile dst[i0.., j0..] +=
// Σ_k a[i, k]·b[j, k] over k in [k0,k1). Short tiles alias row 0 / col 0
// operands; their duplicate results are discarded by the bounded
// write-back.
func dotTile(dst, a, b []float64, k, n, i0, j0, rows, cols, k0, k1 int) {
	a0, a1 := aRowPair(a, k, i0, rows, k0, k1)
	b0 := b[j0*k+k0 : j0*k+k1]
	b1, b2, b3 := b0, b0, b0
	if cols > 1 {
		b1 = b[(j0+1)*k+k0 : (j0+1)*k+k1]
	}
	if cols > 2 {
		b2 = b[(j0+2)*k+k0 : (j0+2)*k+k1]
	}
	if cols > 3 {
		b3 = b[(j0+3)*k+k0 : (j0+3)*k+k1]
	}
	var c00, c01, c02, c03 float64
	var c10, c11, c12, c13 float64
	a1 = a1[:len(a0)]
	b0 = b0[:len(a0)]
	b1 = b1[:len(a0)]
	b2 = b2[:len(a0)]
	b3 = b3[:len(a0)]
	for kk, av0 := range a0 {
		av1 := a1[kk]
		bv0, bv1, bv2, bv3 := b0[kk], b1[kk], b2[kk], b3[kk]
		c00 += av0 * bv0
		c01 += av0 * bv1
		c02 += av0 * bv2
		c03 += av0 * bv3
		c10 += av1 * bv0
		c11 += av1 * bv1
		c12 += av1 * bv2
		c13 += av1 * bv3
	}
	writeTile(dst, n, i0, j0, rows, cols, c00, c01, c02, c03, c10, c11, c12, c13)
}

// MulATB returns aᵀ·b for a (k×m) and b (k×n): the transpose-free form of
// Mul(Transpose(a), b). It completes the kernel family for callers with
// a left-transposed product; the pipeline's own AᵀA shapes go through
// the cheaper SymRankKInto, so inside this module MulATB is exercised by
// the property tests rather than the attacks.
func MulATB(a, b *Dense) *Dense {
	if a.rows != b.rows {
		panic(fmt.Sprintf("mat: MulATB shape mismatch (%dx%d)ᵀ · %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	return MulATBInto(Zeros(a.cols, b.cols), a, b)
}

// MulATBInto computes aᵀ·b into dst (zeroed first) and returns dst
// without materializing aᵀ. dst must not alias a or b.
func MulATBInto(dst, a, b *Dense) *Dense {
	if a.rows != b.rows {
		panic(fmt.Sprintf("mat: MulATBInto shape mismatch (%dx%d)ᵀ · %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	if dst.rows != a.cols || dst.cols != b.cols {
		panic(fmt.Sprintf("mat: MulATBInto destination is %dx%d, want %dx%d", dst.rows, dst.cols, a.cols, b.cols))
	}
	if dst == a || dst == b {
		panic("mat: MulATBInto destination aliases an operand")
	}
	for i := range dst.data {
		dst.data[i] = 0
	}
	m, k, n := a.cols, a.rows, b.cols
	if m == 0 || n == 0 || k == 0 {
		return dst
	}
	workers := 1
	if flops := int64(m) * int64(k) * int64(n); flops >= gemmParallelMinFlops {
		workers = maxWorkers()
	}
	ad, bd, dd := a.data, b.data, dst.data
	if workers <= 1 {
		var packA [mr * kcBlock]float64
		mulATBRows(dd, ad, bd, m, k, n, 0, m, packA[:])
		return dst
	}
	parallelRows(m, workers, func(r0, r1 int) {
		var packA [mr * kcBlock]float64
		mulATBRows(dd, ad, bd, m, k, n, r0, r1, packA[:])
	})
	return dst
}

// mulATBRows computes dst[r0:r1, :] += aᵀ[r0:r1, :]·b. The A panel — a
// column pair of the k×m operand — is gathered once per tile row into a
// packed k-major buffer, after which the inner loops match gemmRows.
func mulATBRows(dst, a, b []float64, m, k, n, r0, r1 int, packA []float64) {
	for k0 := 0; k0 < k; k0 += kcBlock {
		k1 := k0 + kcBlock
		if k1 > k {
			k1 = k
		}
		kc := k1 - k0
		for i0 := r0; i0 < r1; i0 += mr {
			rows := r1 - i0
			if rows > mr {
				rows = mr
			}
			// Pack aᵀ rows [i0,i0+rows) = a columns, k-major.
			for kk := 0; kk < kc; kk++ {
				src := a[(k0+kk)*m+i0:]
				packA[kk*mr] = src[0]
				if rows > 1 {
					packA[kk*mr+1] = src[1]
				} else {
					packA[kk*mr+1] = 0
				}
			}
			for j0 := 0; j0 < n; j0 += nr {
				cols := n - j0
				if cols > nr {
					cols = nr
				}
				atbTile(dst, packA, b, kc, k0, i0, j0, rows, cols, n)
			}
		}
	}
}

// atbTile is the Aᵀ·B tile kernel: pa is the packed k-major A panel
// (pa[2k], pa[2k+1] are the two aᵀ rows at depth k) and B is read in
// place (row k of b is contiguous). It handles any tile width.
func atbTile(dst, pa, b []float64, kc, k0, i0, j0, rows, cols, n int) {
	if cols == nr {
		var c00, c01, c02, c03 float64
		var c10, c11, c12, c13 float64
		pa = pa[:kc*mr]
		for kk := 0; kk < kc; kk++ {
			bs := b[(k0+kk)*n+j0 : (k0+kk)*n+j0+nr]
			b0, b1, b2, b3 := bs[0], bs[1], bs[2], bs[3]
			aq := pa[kk*mr : kk*mr+mr]
			a0, a1 := aq[0], aq[1]
			c00 += a0 * b0
			c01 += a0 * b1
			c02 += a0 * b2
			c03 += a0 * b3
			c10 += a1 * b0
			c11 += a1 * b1
			c12 += a1 * b2
			c13 += a1 * b3
		}
		writeTile(dst, n, i0, j0, rows, nr, c00, c01, c02, c03, c10, c11, c12, c13)
		return
	}
	for jj := 0; jj < cols; jj++ {
		var c0, c1 float64
		for kk := 0; kk < kc; kk++ {
			bv := b[(k0+kk)*n+j0+jj]
			aq := pa[kk*mr : kk*mr+mr]
			c0 += aq[0] * bv
			c1 += aq[1] * bv
		}
		dst[i0*n+j0+jj] += c0
		if rows > 1 {
			dst[(i0+1)*n+j0+jj] += c1
		}
	}
}

// SymRankK returns α·aᵀ·a, the m×m Gram matrix of a's columns.
func SymRankK(a *Dense, alpha float64) *Dense {
	return SymRankKInto(Zeros(a.cols, a.cols), a, alpha)
}

// SymRankKInto computes α·aᵀ·a into the m×m destination (zeroed first)
// and returns dst. Only one triangle is accumulated — half the FLOPs of a
// general product — and mirrored; this is the covariance/Gram kernel of
// stat.CovarianceMatrix and the streaming moment sketch. dst must not
// alias a.
func SymRankKInto(dst, a *Dense, alpha float64) *Dense {
	m := a.cols
	if dst.rows != m || dst.cols != m {
		panic(fmt.Sprintf("mat: SymRankKInto destination is %dx%d, want %dx%d", dst.rows, dst.cols, m, m))
	}
	if dst == a {
		panic("mat: SymRankKInto destination aliases the operand")
	}
	for i := range dst.data {
		dst.data[i] = 0
	}
	SymRankKUpperInto(dst.data, a)
	// Scale and mirror the accumulated upper triangle.
	dd := dst.data
	for i := 0; i < m; i++ {
		for j := i; j < m; j++ {
			v := dd[i*m+j] * alpha
			dd[i*m+j] = v
			dd[j*m+i] = v
		}
	}
	return dst
}

// SymRankKUpperInto adds the upper triangle (j ≥ i) of aᵀ·a into the raw
// m×m row-major accumulator acc, leaving the strict lower triangle
// untouched. It is the shared triangular Gram primitive: the streaming
// moment sketch maintains exactly this layout, so it can fold a centered
// chunk with the blocked kernel and no mirroring cost.
//
// The k (row) dimension is cut into kcBlock slabs and each 2×4 tile of
// the triangle is accumulated in registers; diagonal-straddling and
// ragged tiles fall back to a scalar loop with the same per-element k
// order. Output tiles are computed concurrently for large inputs;
// per-element accumulation order is fixed by the shapes alone, so
// results are bit-identical at any worker count.
func SymRankKUpperInto(acc []float64, a *Dense) {
	n, m := a.rows, a.cols
	if len(acc) != m*m {
		panic(fmt.Sprintf("mat: SymRankKUpperInto accumulator length %d, want %d", len(acc), m*m))
	}
	if n == 0 || m == 0 {
		return
	}
	workers := 1
	if flops := int64(n) * int64(m) * int64(m) / 2; flops >= gemmParallelMinFlops {
		workers = maxWorkers()
	}
	ad := a.data
	if workers > m {
		workers = m
	}
	if workers <= 1 {
		symRankKRows(acc, ad, n, m, 0, m)
		return
	}
	parallelBounds(symRankKSplit(m, workers), func(r0, r1 int) {
		symRankKRows(acc, ad, n, m, r0, r1)
	})
}

// symRankKSplit returns workers+1 row boundaries that give each worker
// an (approximately) equal share of the upper triangle's area — row i
// carries m−i outputs, so an even row split would hand the first worker
// ~2× the mean work and cap the fan-out's scaling. Boundaries depend
// only on (m, workers); per-element accumulation order is unchanged, so
// the balanced split preserves bit-identical results.
func symRankKSplit(m, workers int) []int {
	bounds := make([]int, workers+1)
	total := m * (m + 1) / 2
	r := 0
	for k := 1; k < workers; k++ {
		target := k * total / workers
		// cum(r) = Σ_{i<r}(m−i) = r·m − r(r−1)/2, nondecreasing in r.
		for r < m && r*m-r*(r-1)/2 < target {
			r++
		}
		bounds[k] = r
	}
	bounds[workers] = m
	return bounds
}

// symRankKRows accumulates output rows [r0,r1) of the upper triangle of
// aᵀ·a into acc.
func symRankKRows(acc, a []float64, n, m, r0, r1 int) {
	for k0 := 0; k0 < n; k0 += kcBlock {
		k1 := k0 + kcBlock
		if k1 > n {
			k1 = n
		}
		for i0 := r0; i0 < r1; i0 += mr {
			rows := r1 - i0
			if rows > mr {
				rows = mr
			}
			// Start tile columns at the diagonal block of this tile row.
			for j0 := i0; j0 < m; j0 += nr {
				cols := m - j0
				if cols > nr {
					cols = nr
				}
				if rows == mr && cols == nr && j0 >= i0+mr {
					// Strictly above the diagonal: a full branch-free tile.
					symTile2x4(acc, a, m, i0, j0, k0, k1)
					continue
				}
				// Diagonal-straddling or ragged tile: scalar, upper
				// entries only, same per-element k order.
				for i := i0; i < i0+rows; i++ {
					for j := j0; j < j0+cols; j++ {
						if j < i {
							continue
						}
						var s float64
						for kk := k0; kk < k1; kk++ {
							s += a[kk*m+i] * a[kk*m+j]
						}
						acc[i*m+j] += s
					}
				}
			}
		}
	}
}

// symTile2x4 accumulates a full 2×4 tile acc[i0.., j0..] +=
// Σ_k a[k, i]·a[k, j] over k in [k0,k1). Both index bands of row k are
// contiguous loads and all 8 partial sums stay in registers.
func symTile2x4(acc, a []float64, m, i0, j0, k0, k1 int) {
	var c00, c01, c02, c03 float64
	var c10, c11, c12, c13 float64
	for kk := k0; kk < k1; kk++ {
		base := a[kk*m:]
		ai := base[i0 : i0+mr]
		aj := base[j0 : j0+nr]
		a0, a1 := ai[0], ai[1]
		b0, b1, b2, b3 := aj[0], aj[1], aj[2], aj[3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
	}
	writeTile(acc, m, i0, j0, mr, nr, c00, c01, c02, c03, c10, c11, c12, c13)
}
