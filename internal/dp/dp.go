// Package dp provides the differential privacy mechanisms that the line
// of attacks in this repository historically motivated: Huang, Du &
// Chen's reconstruction results (together with Kargupta et al.'s) showed
// that "amount of noise" is not a privacy guarantee, pushing the field
// toward mechanisms with worst-case semantics.
//
// The package implements the Laplace and Gaussian mechanisms with
// sensitivity-based calibration and sequential composition accounting.
// The accompanying tests demonstrate the bridge to the paper: noise
// calibrated per attribute still yields to the BE-DR attack on
// correlated data — the protection that survives is exactly the ε
// accounted by composition over the *whole* record, never the
// per-attribute ε that the attack launders away.
package dp

import (
	"fmt"
	"math"
	"math/rand"

	"randpriv/internal/dist"
	"randpriv/internal/mat"
)

// LaplaceMechanism releases value + Lap(sensitivity/epsilon), the
// canonical ε-differentially-private mechanism for a query with the
// given L1 sensitivity.
type LaplaceMechanism struct {
	// Epsilon is the privacy budget, > 0.
	Epsilon float64
	// Sensitivity is the query's L1 sensitivity, > 0.
	Sensitivity float64
}

// NewLaplaceMechanism validates the parameters.
func NewLaplaceMechanism(epsilon, sensitivity float64) (LaplaceMechanism, error) {
	if epsilon <= 0 || math.IsNaN(epsilon) || math.IsInf(epsilon, 0) {
		return LaplaceMechanism{}, fmt.Errorf("dp: epsilon %v, must be finite and > 0", epsilon)
	}
	if sensitivity <= 0 || math.IsNaN(sensitivity) || math.IsInf(sensitivity, 0) {
		return LaplaceMechanism{}, fmt.Errorf("dp: sensitivity %v, must be finite and > 0", sensitivity)
	}
	return LaplaceMechanism{Epsilon: epsilon, Sensitivity: sensitivity}, nil
}

// Scale returns the Laplace scale b = sensitivity/epsilon.
func (m LaplaceMechanism) Scale() float64 { return m.Sensitivity / m.Epsilon }

// NoiseVariance returns the per-release noise variance 2b².
func (m LaplaceMechanism) NoiseVariance() float64 {
	b := m.Scale()
	return 2 * b * b
}

// Release returns value + Laplace noise.
func (m LaplaceMechanism) Release(value float64, rng *rand.Rand) float64 {
	return value + dist.NewLaplace(0, m.Scale()).Rand(rng)
}

// ReleaseMatrix perturbs every entry independently — the "local,
// per-attribute" release whose effective guarantee the composition
// accounting below prices.
func (m LaplaceMechanism) ReleaseMatrix(x *mat.Dense, rng *rand.Rand) *mat.Dense {
	out := x.Clone()
	lap := dist.NewLaplace(0, m.Scale())
	n, _ := x.Dims()
	for i := 0; i < n; i++ {
		row := out.RawRow(i)
		for j := range row {
			row[j] += lap.Rand(rng)
		}
	}
	return out
}

// GaussianMechanism releases value + N(0, σ²) with σ calibrated for
// (ε, δ)-differential privacy via the classic analysis
// σ ≥ sensitivity·√(2·ln(1.25/δ))/ε (valid for ε ≤ 1).
type GaussianMechanism struct {
	Epsilon     float64
	Delta       float64
	Sensitivity float64 // L2 sensitivity
}

// NewGaussianMechanism validates the parameters.
func NewGaussianMechanism(epsilon, delta, sensitivity float64) (GaussianMechanism, error) {
	if epsilon <= 0 || epsilon > 1 {
		return GaussianMechanism{}, fmt.Errorf("dp: epsilon %v, must be in (0,1] for the classic Gaussian analysis", epsilon)
	}
	if delta <= 0 || delta >= 1 {
		return GaussianMechanism{}, fmt.Errorf("dp: delta %v, must be in (0,1)", delta)
	}
	if sensitivity <= 0 {
		return GaussianMechanism{}, fmt.Errorf("dp: sensitivity %v, must be > 0", sensitivity)
	}
	return GaussianMechanism{Epsilon: epsilon, Delta: delta, Sensitivity: sensitivity}, nil
}

// Sigma returns the calibrated noise standard deviation.
func (m GaussianMechanism) Sigma() float64 {
	return m.Sensitivity * math.Sqrt(2*math.Log(1.25/m.Delta)) / m.Epsilon
}

// Release returns value + calibrated Gaussian noise.
func (m GaussianMechanism) Release(value float64, rng *rand.Rand) float64 {
	return value + m.Sigma()*rng.NormFloat64()
}

// Budget tracks cumulative privacy loss under sequential composition.
type Budget struct {
	spentEps   float64
	spentDelta float64
}

// Spend records one (ε, δ) release.
func (b *Budget) Spend(epsilon, delta float64) error {
	if epsilon < 0 || delta < 0 {
		return fmt.Errorf("dp: negative privacy cost (ε=%v, δ=%v)", epsilon, delta)
	}
	b.spentEps += epsilon
	b.spentDelta += delta
	return nil
}

// Spent returns the total (ε, δ) under basic sequential composition.
func (b *Budget) Spent() (epsilon, delta float64) { return b.spentEps, b.spentDelta }

// RecordEpsilon prices the release of an m-attribute record when each
// attribute is perturbed with a per-attribute ε mechanism: by sequential
// composition the whole record costs m·ε. This is the accounting lesson
// the reconstruction attacks teach — correlated attributes cannot be
// priced independently.
func RecordEpsilon(perAttribute float64, m int) float64 {
	return perAttribute * float64(m)
}
