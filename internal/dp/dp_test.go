package dp

import (
	"math"
	"math/rand"
	"testing"

	"randpriv/internal/dist"
	"randpriv/internal/randomize"
	"randpriv/internal/recon"
	"randpriv/internal/stat"
	"randpriv/internal/synth"
)

// lapDist exposes the mechanism's noise as a dist.Continuous.
func lapDist(m LaplaceMechanism) dist.Continuous {
	return dist.NewLaplace(0, m.Scale())
}

func TestNewLaplaceMechanismValidation(t *testing.T) {
	bad := [][2]float64{{0, 1}, {-1, 1}, {1, 0}, {1, -2}, {math.NaN(), 1}, {1, math.Inf(1)}}
	for _, c := range bad {
		if _, err := NewLaplaceMechanism(c[0], c[1]); err == nil {
			t.Errorf("NewLaplaceMechanism(%v, %v) must error", c[0], c[1])
		}
	}
}

func TestLaplaceMechanismScale(t *testing.T) {
	m, err := NewLaplaceMechanism(0.5, 2)
	if err != nil {
		t.Fatalf("NewLaplaceMechanism: %v", err)
	}
	if m.Scale() != 4 {
		t.Errorf("Scale = %v, want 4", m.Scale())
	}
	if m.NoiseVariance() != 32 {
		t.Errorf("NoiseVariance = %v, want 32", m.NoiseVariance())
	}
}

func TestLaplaceReleaseDistribution(t *testing.T) {
	m, _ := NewLaplaceMechanism(1, 1) // b = 1, var = 2
	rng := rand.New(rand.NewSource(1))
	n := 100000
	var sum, ss float64
	for i := 0; i < n; i++ {
		v := m.Release(10, rng)
		sum += v
		ss += (v - 10) * (v - 10)
	}
	mean := sum / float64(n)
	varc := ss / float64(n)
	if math.Abs(mean-10) > 0.03 {
		t.Errorf("release mean = %v, want ≈10", mean)
	}
	if math.Abs(varc-2) > 0.1 {
		t.Errorf("release variance = %v, want ≈2", varc)
	}
}

func TestGaussianMechanismValidation(t *testing.T) {
	bad := [][3]float64{{0, 0.1, 1}, {1.5, 0.1, 1}, {0.5, 0, 1}, {0.5, 1, 1}, {0.5, 0.1, 0}}
	for _, c := range bad {
		if _, err := NewGaussianMechanism(c[0], c[1], c[2]); err == nil {
			t.Errorf("NewGaussianMechanism(%v) must error", c)
		}
	}
}

func TestGaussianMechanismSigma(t *testing.T) {
	m, err := NewGaussianMechanism(0.5, 1e-5, 1)
	if err != nil {
		t.Fatalf("NewGaussianMechanism: %v", err)
	}
	want := math.Sqrt(2*math.Log(1.25e5)) / 0.5
	if math.Abs(m.Sigma()-want) > 1e-12 {
		t.Errorf("Sigma = %v, want %v", m.Sigma(), want)
	}
	// Smaller epsilon ⇒ more noise.
	m2, _ := NewGaussianMechanism(0.25, 1e-5, 1)
	if m2.Sigma() <= m.Sigma() {
		t.Error("halving epsilon must increase sigma")
	}
}

func TestBudgetComposition(t *testing.T) {
	var b Budget
	if err := b.Spend(0.5, 1e-6); err != nil {
		t.Fatal(err)
	}
	if err := b.Spend(0.25, 0); err != nil {
		t.Fatal(err)
	}
	eps, delta := b.Spent()
	if math.Abs(eps-0.75) > 1e-12 || math.Abs(delta-1e-6) > 1e-18 {
		t.Errorf("Spent = (%v, %v)", eps, delta)
	}
	if err := b.Spend(-1, 0); err == nil {
		t.Error("negative spend must error")
	}
}

func TestRecordEpsilon(t *testing.T) {
	if got := RecordEpsilon(0.1, 20); math.Abs(got-2) > 1e-12 {
		t.Errorf("RecordEpsilon = %v, want 2", got)
	}
}

// The bridge to the paper: Laplace noise calibrated per attribute is
// still filtered by the Bayes attack on correlated data — the RMSE
// "protection" shrinks well below the mechanism's noise level, exactly
// as with plain Gaussian randomization. Only the composed (m·ε) record
// budget describes what is actually guaranteed.
func TestBEDRFiltersPerAttributeLaplaceNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	spec := synth.Spectrum{M: 20, P: 3, Principal: 400, Tail: 4}
	vals, err := spec.Values()
	if err != nil {
		t.Fatalf("spectrum: %v", err)
	}
	ds, err := synth.Generate(1500, vals, nil, rng)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	mech, err := NewLaplaceMechanism(1, 4) // b = 4, noise var = 32
	if err != nil {
		t.Fatalf("NewLaplaceMechanism: %v", err)
	}
	y := mech.ReleaseMatrix(ds.X, rng)

	attack := recon.NewBEDR(mech.NoiseVariance())
	xhat, err := attack.Reconstruct(y)
	if err != nil {
		t.Fatalf("BE-DR: %v", err)
	}
	ndr := stat.RMSE(y, ds.X)
	got := stat.RMSE(xhat, ds.X)
	if got >= 0.7*ndr {
		t.Errorf("BE-DR RMSE %v did not substantially beat the DP noise floor %v", got, ndr)
	}
}

// Sanity: the mechanisms and the paper's randomization schemes agree on
// noise accounting — an Additive scheme built from the mechanism's noise
// has matching variance.
func TestMechanismMatchesRandomizeScheme(t *testing.T) {
	mech, _ := NewLaplaceMechanism(2, 4) // b=2, var=8
	scheme := randomize.Additive{Noise: lapDist(mech)}
	if math.Abs(scheme.NoiseVariance()-mech.NoiseVariance()) > 1e-12 {
		t.Errorf("scheme variance %v != mechanism variance %v",
			scheme.NoiseVariance(), mech.NoiseVariance())
	}
}
