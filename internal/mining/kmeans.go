package mining

import (
	"fmt"
	"math"
	"math/rand"

	"randpriv/internal/mat"
)

// KMeansResult holds a clustering: one centroid per cluster and the
// cluster assignment of every row.
type KMeansResult struct {
	Centroids  *mat.Dense
	Assignment []int
	// Inertia is the summed squared distance of rows to their centroids.
	Inertia float64
	// Iterations is the number of Lloyd rounds performed.
	Iterations int
}

// KMeans clusters the rows of x into k clusters with Lloyd's algorithm and
// k-means++ seeding. maxIter bounds the iteration count (≤ 0 means 100).
func KMeans(x *mat.Dense, k, maxIter int, rng *rand.Rand) (*KMeansResult, error) {
	n, m := x.Dims()
	if k <= 0 || k > n {
		return nil, fmt.Errorf("mining: k = %d outside [1, %d]", k, n)
	}
	if maxIter <= 0 {
		maxIter = 100
	}
	centroids := seedPlusPlus(x, k, rng)
	assign := make([]int, n)
	res := &KMeansResult{}
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i := 0; i < n; i++ {
			row := x.RawRow(i)
			best, bestD := 0, math.Inf(1)
			for c := 0; c < k; c++ {
				d := sqDist(row, centroids.RawRow(c))
				if d < bestD {
					bestD = d
					best = c
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		res.Iterations = iter + 1
		if !changed && iter > 0 {
			break
		}
		// Recompute centroids; empty clusters keep their position.
		sums := mat.Zeros(k, m)
		counts := make([]int, k)
		for i := 0; i < n; i++ {
			c := assign[i]
			counts[c]++
			dst := sums.RawRow(c)
			for j, v := range x.RawRow(i) {
				dst[j] += v
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				continue
			}
			dst := sums.RawRow(c)
			inv := 1 / float64(counts[c])
			cRow := centroids.RawRow(c)
			for j := range dst {
				cRow[j] = dst[j] * inv
			}
		}
	}
	var inertia float64
	for i := 0; i < n; i++ {
		inertia += sqDist(x.RawRow(i), centroids.RawRow(assign[i]))
	}
	res.Centroids = centroids
	res.Assignment = assign
	res.Inertia = inertia
	return res, nil
}

// seedPlusPlus picks k initial centroids with the k-means++ rule.
func seedPlusPlus(x *mat.Dense, k int, rng *rand.Rand) *mat.Dense {
	n, m := x.Dims()
	centroids := mat.Zeros(k, m)
	first := rng.Intn(n)
	centroids.SetRow(0, x.Row(first))
	d2 := make([]float64, n)
	for i := 0; i < n; i++ {
		d2[i] = sqDist(x.RawRow(i), centroids.RawRow(0))
	}
	for c := 1; c < k; c++ {
		var total float64
		for _, d := range d2 {
			total += d
		}
		var pick int
		if total <= 0 {
			pick = rng.Intn(n)
		} else {
			target := rng.Float64() * total
			var acc float64
			for i, d := range d2 {
				acc += d
				if acc >= target {
					pick = i
					break
				}
			}
		}
		centroids.SetRow(c, x.Row(pick))
		for i := 0; i < n; i++ {
			if d := sqDist(x.RawRow(i), centroids.RawRow(c)); d < d2[i] {
				d2[i] = d
			}
		}
	}
	return centroids
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}

// MatchCentroids greedily pairs each centroid in a with its nearest
// centroid in b and returns the mean pairing distance — a scale-aware
// measure of how well clustering structure survives disguising.
func MatchCentroids(a, b *mat.Dense) (float64, error) {
	ka, m := a.Dims()
	kb, mb := b.Dims()
	if ka != kb || m != mb {
		return 0, fmt.Errorf("mining: centroid sets %dx%d vs %dx%d", ka, m, kb, mb)
	}
	if ka == 0 {
		return 0, nil
	}
	used := make([]bool, kb)
	var total float64
	for i := 0; i < ka; i++ {
		best, bestD := -1, math.Inf(1)
		for j := 0; j < kb; j++ {
			if used[j] {
				continue
			}
			if d := sqDist(a.RawRow(i), b.RawRow(j)); d < bestD {
				bestD = d
				best = j
			}
		}
		used[best] = true
		total += math.Sqrt(bestD)
	}
	return total / float64(ka), nil
}
