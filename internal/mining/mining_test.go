package mining

import (
	"math"
	"math/rand"
	"testing"

	"randpriv/internal/mat"
)

// twoClassData generates two well-separated Gaussian blobs.
func twoClassData(n int, sep float64, rng *rand.Rand) (*mat.Dense, []int) {
	x := mat.Zeros(n, 2)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % 2
		labels[i] = c
		shift := -sep / 2
		if c == 1 {
			shift = sep / 2
		}
		x.Set(i, 0, shift+rng.NormFloat64())
		x.Set(i, 1, shift+rng.NormFloat64())
	}
	return x, labels
}

func TestTrainNaiveBayesValidation(t *testing.T) {
	if _, err := TrainNaiveBayes(mat.Zeros(0, 2), nil); err == nil {
		t.Error("empty data must error")
	}
	if _, err := TrainNaiveBayes(mat.Zeros(3, 2), []int{1, 2}); err == nil {
		t.Error("label count mismatch must error")
	}
	if _, err := TrainNaiveBayes(mat.Zeros(3, 2), []int{1, 1, 1}); err == nil {
		t.Error("single class must error")
	}
}

func TestNaiveBayesSeparableData(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, labels := twoClassData(1000, 8, rng)
	nb, err := TrainNaiveBayes(x, labels)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	pred, err := nb.PredictAll(x)
	if err != nil {
		t.Fatalf("PredictAll: %v", err)
	}
	acc, err := Accuracy(pred, labels)
	if err != nil {
		t.Fatalf("Accuracy: %v", err)
	}
	if acc < 0.99 {
		t.Errorf("accuracy = %v on well-separated blobs, want > 0.99", acc)
	}
	if got := len(nb.Classes()); got != 2 {
		t.Errorf("Classes = %d, want 2", got)
	}
}

func TestNaiveBayesPredictLengthMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, labels := twoClassData(100, 4, rng)
	nb, _ := TrainNaiveBayes(x, labels)
	if _, err := nb.Predict([]float64{1}); err == nil {
		t.Error("feature length mismatch must error")
	}
}

func TestNaiveBayesConstantAttribute(t *testing.T) {
	// A zero-variance attribute must not produce NaN scores.
	x := mat.NewFromRows([][]float64{{1, 5}, {1, 5}, {2, 5}, {2, 5}})
	labels := []int{0, 0, 1, 1}
	nb, err := TrainNaiveBayes(x, labels)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	c, err := nb.Predict([]float64{1, 5})
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	if c != 0 {
		t.Errorf("Predict = %d, want 0", c)
	}
}

func TestAccuracy(t *testing.T) {
	acc, err := Accuracy([]int{1, 2, 3}, []int{1, 2, 4})
	if err != nil {
		t.Fatalf("Accuracy: %v", err)
	}
	if math.Abs(acc-2.0/3) > 1e-12 {
		t.Errorf("Accuracy = %v, want 2/3", acc)
	}
	if _, err := Accuracy([]int{1}, []int{1, 2}); err == nil {
		t.Error("length mismatch must error")
	}
	if acc, _ := Accuracy(nil, nil); acc != 0 {
		t.Error("empty accuracy must be 0")
	}
}

func TestKMeansValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := mat.Zeros(5, 2)
	if _, err := KMeans(x, 0, 10, rng); err == nil {
		t.Error("k=0 must error")
	}
	if _, err := KMeans(x, 6, 10, rng); err == nil {
		t.Error("k>n must error")
	}
}

func TestKMeansRecoversBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 600
	x := mat.Zeros(n, 2)
	trueCenters := [][]float64{{-10, -10}, {0, 10}, {10, -5}}
	for i := 0; i < n; i++ {
		c := trueCenters[i%3]
		x.Set(i, 0, c[0]+rng.NormFloat64())
		x.Set(i, 1, c[1]+rng.NormFloat64())
	}
	res, err := KMeans(x, 3, 100, rng)
	if err != nil {
		t.Fatalf("KMeans: %v", err)
	}
	truth := mat.NewFromRows(trueCenters)
	dist, err := MatchCentroids(truth, res.Centroids)
	if err != nil {
		t.Fatalf("MatchCentroids: %v", err)
	}
	if dist > 0.5 {
		t.Errorf("mean centroid distance = %v, want < 0.5", dist)
	}
	if res.Inertia <= 0 {
		t.Errorf("Inertia = %v, want > 0", res.Inertia)
	}
	if res.Iterations <= 0 {
		t.Error("Iterations must be positive")
	}
}

func TestKMeansSingleCluster(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := mat.Zeros(50, 2)
	for i := 0; i < 50; i++ {
		x.Set(i, 0, rng.NormFloat64())
		x.Set(i, 1, rng.NormFloat64())
	}
	res, err := KMeans(x, 1, 50, rng)
	if err != nil {
		t.Fatalf("KMeans: %v", err)
	}
	for _, a := range res.Assignment {
		if a != 0 {
			t.Fatal("all rows must be in cluster 0")
		}
	}
	// Centroid must be the sample mean.
	if math.Abs(res.Centroids.At(0, 0)) > 0.5 || math.Abs(res.Centroids.At(0, 1)) > 0.5 {
		t.Errorf("k=1 centroid = (%v,%v), want ≈(0,0)", res.Centroids.At(0, 0), res.Centroids.At(0, 1))
	}
}

func TestKMeansDeterministicUnderSeed(t *testing.T) {
	x := mat.Zeros(30, 2)
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 30; i++ {
		x.Set(i, 0, rng.NormFloat64())
		x.Set(i, 1, rng.NormFloat64())
	}
	a, err := KMeans(x, 3, 50, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatalf("KMeans: %v", err)
	}
	b, err := KMeans(x, 3, 50, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatalf("KMeans: %v", err)
	}
	if !a.Centroids.Equal(b.Centroids) {
		t.Error("k-means must be deterministic under a fixed seed")
	}
}

func TestMatchCentroidsValidation(t *testing.T) {
	if _, err := MatchCentroids(mat.Zeros(2, 2), mat.Zeros(3, 2)); err == nil {
		t.Error("centroid count mismatch must error")
	}
	if d, err := MatchCentroids(mat.Zeros(0, 0), mat.Zeros(0, 0)); err != nil || d != 0 {
		t.Errorf("empty match = (%v, %v)", d, err)
	}
}

func TestMatchCentroidsIdentical(t *testing.T) {
	c := mat.NewFromRows([][]float64{{1, 2}, {3, 4}})
	d, err := MatchCentroids(c, c)
	if err != nil {
		t.Fatalf("MatchCentroids: %v", err)
	}
	if d != 0 {
		t.Errorf("self-match distance = %v, want 0", d)
	}
}
