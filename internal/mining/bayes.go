// Package mining provides the small data mining substrate used to
// demonstrate the utility side of the paper's §8.1 claim: the improved
// (correlated-noise) randomization still supports aggregate mining
// because Σy = Σx + Σr keeps the original distribution recoverable. The
// package includes a Gaussian naive Bayes classifier and a k-means
// clusterer that can run on original, disguised, or reconstructed data.
package mining

import (
	"fmt"
	"math"

	"randpriv/internal/mat"
	"randpriv/internal/stat"
)

// NaiveBayes is a Gaussian naive Bayes classifier: per class and per
// attribute, a univariate normal model with the class prior.
type NaiveBayes struct {
	classes []int
	priors  map[int]float64
	// means[c][j], vars[c][j] for class c, attribute j.
	means map[int][]float64
	vars  map[int][]float64
	m     int
}

// TrainNaiveBayes fits the classifier on x (n×m) with integer labels.
func TrainNaiveBayes(x *mat.Dense, labels []int) (*NaiveBayes, error) {
	n, m := x.Dims()
	if n == 0 || m == 0 {
		return nil, fmt.Errorf("mining: empty training data")
	}
	if len(labels) != n {
		return nil, fmt.Errorf("mining: %d labels for %d rows", len(labels), n)
	}
	byClass := make(map[int][]int)
	for i, c := range labels {
		byClass[c] = append(byClass[c], i)
	}
	if len(byClass) < 2 {
		return nil, fmt.Errorf("mining: need at least 2 classes, got %d", len(byClass))
	}
	nb := &NaiveBayes{
		priors: make(map[int]float64),
		means:  make(map[int][]float64),
		vars:   make(map[int][]float64),
		m:      m,
	}
	for c, rows := range byClass {
		nb.classes = append(nb.classes, c)
		nb.priors[c] = float64(len(rows)) / float64(n)
		means := make([]float64, m)
		vars := make([]float64, m)
		for j := 0; j < m; j++ {
			col := make([]float64, len(rows))
			for k, i := range rows {
				col[k] = x.At(i, j)
			}
			means[j] = stat.Mean(col)
			v := stat.Variance(col)
			if v < 1e-9 {
				v = 1e-9 // variance floor keeps the likelihood finite
			}
			vars[j] = v
		}
		nb.means[c] = means
		nb.vars[c] = vars
	}
	return nb, nil
}

// Classes returns the class labels seen at training time.
func (nb *NaiveBayes) Classes() []int { return append([]int(nil), nb.classes...) }

// Predict returns the most probable class for the feature vector.
func (nb *NaiveBayes) Predict(row []float64) (int, error) {
	if len(row) != nb.m {
		return 0, fmt.Errorf("mining: feature length %d, want %d", len(row), nb.m)
	}
	best := nb.classes[0]
	bestScore := math.Inf(-1)
	for _, c := range nb.classes {
		score := math.Log(nb.priors[c])
		means, vars := nb.means[c], nb.vars[c]
		for j, v := range row {
			d := v - means[j]
			score += -0.5*d*d/vars[j] - 0.5*math.Log(2*math.Pi*vars[j])
		}
		if score > bestScore {
			bestScore = score
			best = c
		}
	}
	return best, nil
}

// PredictAll classifies every row of x.
func (nb *NaiveBayes) PredictAll(x *mat.Dense) ([]int, error) {
	n, _ := x.Dims()
	out := make([]int, n)
	for i := 0; i < n; i++ {
		c, err := nb.Predict(x.Row(i))
		if err != nil {
			return nil, err
		}
		out[i] = c
	}
	return out, nil
}

// Accuracy returns the fraction of predictions matching truth.
func Accuracy(pred, truth []int) (float64, error) {
	if len(pred) != len(truth) {
		return 0, fmt.Errorf("mining: %d predictions for %d labels", len(pred), len(truth))
	}
	if len(pred) == 0 {
		return 0, nil
	}
	var ok int
	for i := range pred {
		if pred[i] == truth[i] {
			ok++
		}
	}
	return float64(ok) / float64(len(pred)), nil
}
