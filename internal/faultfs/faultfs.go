// Package faultfs abstracts the filesystem operations behind randpriv's
// durable planes — the jobs state dir, the cluster CAS/lease store and
// the server's upload spool — so that storage faults become injectable,
// deterministic and replayable instead of hypothetical.
//
// Two implementations exist:
//
//   - OS: a zero-cost passthrough to the os package. Production code
//     pays one interface dispatch per call and nothing else.
//   - Injector: wraps any FS with a schedule of deterministic faults
//     (ENOSPC at write N, EIO on read K, torn writes that persist a
//     prefix, crash points that halt the filesystem mid-protocol). The
//     chaos suites replay seeded schedules through it and assert the
//     durable planes either converge to golden bytes or fail with a
//     clean typed error and a restart-recoverable state dir.
//
// The interface is deliberately narrow: exactly the calls the durable
// planes make, nothing speculative. SyncDir exists because a rename is
// only crash-durable once the parent directory's entry is on disk —
// the commit points fsync the temp file and then the directory.
package faultfs

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"syscall"
)

// File is the subset of *os.File the durable planes use.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	// Name returns the path the file was opened or created with.
	Name() string
	// Sync flushes the file's contents to stable storage.
	Sync() error
}

// FS is the filesystem surface of the durable planes. Every method has
// the semantics of its os package namesake.
type FS interface {
	Open(name string) (File, error)
	Create(name string) (File, error)
	CreateTemp(dir, pattern string) (File, error)
	ReadFile(name string) ([]byte, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	RemoveAll(path string) error
	MkdirAll(path string, perm fs.FileMode) error
	ReadDir(name string) ([]fs.DirEntry, error)
	Stat(name string) (fs.FileInfo, error)
	// SyncDir fsyncs the directory itself, making previously renamed
	// entries crash-durable. Filesystems that cannot sync a directory
	// (some network and FUSE mounts return EINVAL/ENOTSUP) are treated
	// as success — there is nothing more the caller could do.
	SyncDir(dir string) error
}

// OS is the passthrough FS used in production.
type OS struct{}

func (OS) Open(name string) (File, error)   { return os.Open(name) }
func (OS) Create(name string) (File, error) { return os.Create(name) }
func (OS) CreateTemp(dir, pattern string) (File, error) {
	return os.CreateTemp(dir, pattern)
}
func (OS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (OS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (OS) Remove(name string) error                     { return os.Remove(name) }
func (OS) RemoveAll(path string) error                  { return os.RemoveAll(path) }
func (OS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }
func (OS) ReadDir(name string) ([]fs.DirEntry, error)   { return os.ReadDir(name) }
func (OS) Stat(name string) (fs.FileInfo, error)        { return os.Stat(name) }

func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil && (errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP) || errors.Is(err, syscall.EBADF)) {
		return nil
	}
	return err
}

// Default returns fs, or the OS passthrough when fs is nil — the
// convention every durable plane uses to make faultfs opt-in.
func Default(fsys FS) FS {
	if fsys == nil {
		return OS{}
	}
	return fsys
}
