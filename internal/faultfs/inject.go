// The deterministic fault injector: a schedule of rules replayed over a
// wrapped FS. Determinism is the whole point — a chaos test that found a
// bug must reproduce it on every run, so nothing here consults a clock
// or an unseeded RNG. A schedule fires on call counts: "the 3rd write
// under tasks/", "every read of job.json after the first".

package faultfs

import (
	"errors"
	"fmt"
	"io/fs"
	"strings"
	"sync"
	"syscall"
)

// Op names one filesystem operation class for rule matching.
type Op string

const (
	OpOpen    Op = "open"
	OpCreate  Op = "create" // Create and CreateTemp
	OpRead    Op = "read"   // File.Read and ReadFile
	OpWrite   Op = "write"
	OpSync    Op = "sync" // File.Sync and SyncDir
	OpClose   Op = "close"
	OpRename  Op = "rename"
	OpRemove  Op = "remove" // Remove and RemoveAll
	OpMkdir   Op = "mkdir"
	OpReadDir Op = "readdir"
	OpStat    Op = "stat"
)

// Common injected errnos, wrapped as real *fs.PathErrors so production
// error classification (retry.Transient) sees exactly what a failing
// disk would produce.
var (
	ErrIO      = syscall.EIO
	ErrNoSpace = syscall.ENOSPC
)

// ErrCrashed is returned by every operation after a crash point fired:
// the simulated process is dead and nothing it does reaches the disk.
// Tests "restart" by opening a fresh store over the same directory with
// a clean FS.
var ErrCrashed = errors.New("faultfs: filesystem halted at crash point")

// Rule is one scheduled fault. A rule matches calls of its Op whose
// path contains Path (empty matches everything); it skips the first
// After matches, then fires on the next Times matches (Times 0 means
// once). What firing does:
//
//   - Err non-nil: the call fails with Err (wrapped in a *fs.PathError).
//   - KeepBytes > 0 with OpWrite: a torn write — the first KeepBytes
//     bytes of the failing write persist, then the error surfaces. This
//     models a partial page flush before the device failed.
//   - Crash: after the fault (and any torn prefix) is applied, the
//     filesystem halts — the matched operation does NOT take effect and
//     every later call returns ErrCrashed.
type Rule struct {
	Op        Op
	Path      string
	After     int
	Times     int
	Err       error
	KeepBytes int
	Crash     bool
}

type ruleState struct {
	Rule
	matched int // matching calls seen so far
	fired   int // faults delivered so far
}

// Injector is an FS that replays a fault schedule over an inner FS.
// Safe for concurrent use.
type Injector struct {
	inner FS

	mu      sync.Mutex
	rules   []*ruleState
	crashed bool
	faults  int // total faults delivered, for test assertions
}

// NewInjector wraps inner (nil means the OS passthrough) with schedule.
func NewInjector(inner FS, schedule ...Rule) *Injector {
	inj := &Injector{inner: Default(inner)}
	for _, r := range schedule {
		if r.Times == 0 {
			r.Times = 1
		}
		if r.Err == nil {
			if r.Crash {
				r.Err = ErrCrashed
			} else {
				r.Err = ErrIO
			}
		}
		inj.rules = append(inj.rules, &ruleState{Rule: r})
	}
	return inj
}

// Faults reports how many faults the schedule has delivered.
func (i *Injector) Faults() int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.faults
}

// Crashed reports whether a crash point has fired.
func (i *Injector) Crashed() bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.crashed
}

// check consults the schedule for one call. It returns the rule that
// fired (nil for a clean call). The caller applies the fault.
func (i *Injector) check(op Op, path string) *ruleState {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.crashed {
		return &ruleState{Rule: Rule{Op: op, Path: path, Err: ErrCrashed}}
	}
	for _, r := range i.rules {
		if r.Op != op || !strings.Contains(path, r.Path) {
			continue
		}
		r.matched++
		if r.matched <= r.After || r.fired >= r.Times {
			continue
		}
		r.fired++
		i.faults++
		if r.Crash {
			i.crashed = true
		}
		return r
	}
	return nil
}

// pathErr wraps an injected errno the way the os package would.
func pathErr(op Op, path string, err error) error {
	if errors.Is(err, ErrCrashed) {
		return fmt.Errorf("%s %s: %w", op, path, ErrCrashed)
	}
	return &fs.PathError{Op: string(op), Path: path, Err: err}
}

func (i *Injector) Open(name string) (File, error) {
	if r := i.check(OpOpen, name); r != nil {
		return nil, pathErr(OpOpen, name, r.Err)
	}
	f, err := i.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &injFile{inj: i, f: f}, nil
}

func (i *Injector) Create(name string) (File, error) {
	if r := i.check(OpCreate, name); r != nil {
		return nil, pathErr(OpCreate, name, r.Err)
	}
	f, err := i.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &injFile{inj: i, f: f}, nil
}

func (i *Injector) CreateTemp(dir, pattern string) (File, error) {
	if r := i.check(OpCreate, dir+"/"+pattern); r != nil {
		return nil, pathErr(OpCreate, dir, r.Err)
	}
	f, err := i.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &injFile{inj: i, f: f}, nil
}

func (i *Injector) ReadFile(name string) ([]byte, error) {
	if r := i.check(OpRead, name); r != nil {
		return nil, pathErr(OpRead, name, r.Err)
	}
	return i.inner.ReadFile(name)
}

func (i *Injector) Rename(oldpath, newpath string) error {
	if r := i.check(OpRename, oldpath+" -> "+newpath); r != nil {
		return pathErr(OpRename, newpath, r.Err)
	}
	return i.inner.Rename(oldpath, newpath)
}

func (i *Injector) Remove(name string) error {
	if r := i.check(OpRemove, name); r != nil {
		return pathErr(OpRemove, name, r.Err)
	}
	return i.inner.Remove(name)
}

func (i *Injector) RemoveAll(path string) error {
	if r := i.check(OpRemove, path); r != nil {
		return pathErr(OpRemove, path, r.Err)
	}
	return i.inner.RemoveAll(path)
}

func (i *Injector) MkdirAll(path string, perm fs.FileMode) error {
	if r := i.check(OpMkdir, path); r != nil {
		return pathErr(OpMkdir, path, r.Err)
	}
	return i.inner.MkdirAll(path, perm)
}

func (i *Injector) ReadDir(name string) ([]fs.DirEntry, error) {
	if r := i.check(OpReadDir, name); r != nil {
		return nil, pathErr(OpReadDir, name, r.Err)
	}
	return i.inner.ReadDir(name)
}

func (i *Injector) Stat(name string) (fs.FileInfo, error) {
	if r := i.check(OpStat, name); r != nil {
		return nil, pathErr(OpStat, name, r.Err)
	}
	return i.inner.Stat(name)
}

func (i *Injector) SyncDir(dir string) error {
	if r := i.check(OpSync, dir); r != nil {
		return pathErr(OpSync, dir, r.Err)
	}
	return i.inner.SyncDir(dir)
}

// injFile threads per-file reads/writes/syncs back through the
// schedule, keyed by the file's path.
type injFile struct {
	inj *Injector
	f   File
}

func (w *injFile) Name() string { return w.f.Name() }

func (w *injFile) Read(p []byte) (int, error) {
	if r := w.inj.check(OpRead, w.f.Name()); r != nil {
		return 0, pathErr(OpRead, w.f.Name(), r.Err)
	}
	return w.f.Read(p)
}

func (w *injFile) Write(p []byte) (int, error) {
	if r := w.inj.check(OpWrite, w.f.Name()); r != nil {
		n := 0
		if r.KeepBytes > 0 {
			// Torn write: a prefix reaches the disk before the fault.
			keep := r.KeepBytes
			if keep > len(p) {
				keep = len(p)
			}
			n, _ = w.f.Write(p[:keep])
		}
		return n, pathErr(OpWrite, w.f.Name(), r.Err)
	}
	return w.f.Write(p)
}

func (w *injFile) Seek(offset int64, whence int) (int64, error) {
	return w.f.Seek(offset, whence)
}

func (w *injFile) Sync() error {
	if r := w.inj.check(OpSync, w.f.Name()); r != nil {
		return pathErr(OpSync, w.f.Name(), r.Err)
	}
	return w.f.Sync()
}

func (w *injFile) Close() error {
	if r := w.inj.check(OpClose, w.f.Name()); r != nil {
		w.f.Close()
		return pathErr(OpClose, w.f.Name(), r.Err)
	}
	return w.f.Close()
}
