package faultfs

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

// writeFile is the test's minimal write path through an FS.
func writeFile(fsys FS, path string, body []byte) error {
	f, err := fsys.Create(path)
	if err != nil {
		return err
	}
	_, err = f.Write(body)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func TestOSPassthroughRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fsys := Default(nil)
	path := filepath.Join(dir, "a.txt")
	if err := writeFile(fsys, path, []byte("hello")); err != nil {
		t.Fatalf("write: %v", err)
	}
	body, err := fsys.ReadFile(path)
	if err != nil || string(body) != "hello" {
		t.Fatalf("read back = %q, %v", body, err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		t.Fatalf("sync dir: %v", err)
	}
	dst := filepath.Join(dir, "b.txt")
	if err := fsys.Rename(path, dst); err != nil {
		t.Fatalf("rename: %v", err)
	}
	if _, err := fsys.Stat(dst); err != nil {
		t.Fatalf("stat after rename: %v", err)
	}
}

// TestInjectorDeterminism: the same schedule over the same call
// sequence fires at exactly the same calls, every run.
func TestInjectorDeterminism(t *testing.T) {
	run := func() []int {
		dir := t.TempDir()
		inj := NewInjector(nil, Rule{Op: OpWrite, Path: "data", After: 1, Times: 2, Err: ErrNoSpace})
		var fired []int
		for i := 0; i < 6; i++ {
			err := writeFile(inj, filepath.Join(dir, "data.bin"), []byte("x"))
			if err != nil {
				if !errors.Is(err, syscall.ENOSPC) {
					t.Fatalf("call %d: err = %v, want ENOSPC", i, err)
				}
				fired = append(fired, i)
			}
		}
		return fired
	}
	a, b := run(), run()
	if len(a) != 2 || a[0] != 1 || a[1] != 2 {
		t.Fatalf("faults fired at calls %v, want [1 2] (After=1 skips the first, Times=2 fires twice)", a)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule not deterministic: run1 %v run2 %v", a, b)
		}
	}
}

func TestInjectedErrorsAreRealErrnos(t *testing.T) {
	inj := NewInjector(nil, Rule{Op: OpOpen, Path: "victim"})
	_, err := inj.Open(filepath.Join(t.TempDir(), "victim.txt"))
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("err = %v, want EIO via errors.Is", err)
	}
	var pe *os.PathError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T, want *fs.PathError (what a real failing open returns)", err)
	}
}

// TestTornWrite: a KeepBytes rule persists exactly that prefix before
// surfacing the error — the partial-page-flush model.
func TestTornWrite(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(nil, Rule{Op: OpWrite, Path: "torn", KeepBytes: 3})
	path := filepath.Join(dir, "torn.bin")
	err := writeFile(inj, path, []byte("abcdefgh"))
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("write err = %v, want EIO", err)
	}
	body, rerr := os.ReadFile(path)
	if rerr != nil {
		t.Fatalf("read torn file: %v", rerr)
	}
	if string(body) != "abc" {
		t.Fatalf("torn file holds %q, want the 3-byte prefix \"abc\"", body)
	}
}

// TestCrashHaltsEverything: after a crash rule fires, the matched op
// does not take effect and every later op fails with ErrCrashed.
func TestCrashHaltsEverything(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "tmp-file")
	dst := filepath.Join(dir, "committed")
	if err := os.WriteFile(src, []byte("payload"), 0o644); err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(nil, Rule{Op: OpRename, Path: "committed", Crash: true})
	if err := inj.Rename(src, dst); !errors.Is(err, ErrCrashed) {
		t.Fatalf("rename err = %v, want ErrCrashed", err)
	}
	if !inj.Crashed() {
		t.Fatal("Crashed() = false after crash rule fired")
	}
	// The rename must NOT have happened: the crash point is *between*
	// the temp write and the commit.
	if _, err := os.Stat(dst); err == nil {
		t.Fatal("crashed rename still committed the file")
	}
	if _, err := os.Stat(src); err != nil {
		t.Fatalf("temp file gone after crashed rename: %v", err)
	}
	// Everything after the crash fails, even ops no rule mentions.
	if _, err := inj.ReadFile(src); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash read err = %v, want ErrCrashed", err)
	}
	if err := inj.MkdirAll(filepath.Join(dir, "sub"), 0o755); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash mkdir err = %v, want ErrCrashed", err)
	}
	// A fresh FS over the same directory (the "restart") sees the
	// pre-crash state intact.
	clean := Default(nil)
	body, err := clean.ReadFile(src)
	if err != nil || string(body) != "payload" {
		t.Fatalf("post-restart read = %q, %v", body, err)
	}
}

func TestFaultsCounter(t *testing.T) {
	inj := NewInjector(nil,
		Rule{Op: OpStat, Path: "x", Times: 3},
		Rule{Op: OpRemove, Path: "y"},
	)
	for i := 0; i < 5; i++ {
		inj.Stat("x") //nolint:errcheck
	}
	inj.Remove("y") //nolint:errcheck
	if got := inj.Faults(); got != 4 {
		t.Fatalf("Faults() = %d, want 4 (3 stats + 1 remove)", got)
	}
}

func TestInjFileReadFault(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "r.bin")
	if err := os.WriteFile(path, []byte("abc"), 0o644); err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(nil, Rule{Op: OpRead, Path: "r.bin", After: 1})
	f, err := inj.Open(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer f.Close()
	buf := make([]byte, 1)
	if _, err := f.Read(buf); err != nil {
		t.Fatalf("first read should pass: %v", err)
	}
	if _, err := f.Read(buf); !errors.Is(err, syscall.EIO) {
		t.Fatalf("second read err = %v, want EIO", err)
	}
	if _, err := io.ReadAll(f); err != nil {
		t.Fatalf("third read should pass again (Times=1): %v", err)
	}
}
