package randpriv_test

// End-to-end integration tests spanning the whole pipeline: synthetic
// generation → randomization → attack → report, plus the cross-module
// consistency properties that only show up when everything is wired
// together.

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"randpriv/internal/core"
	"randpriv/internal/dataset"
	"randpriv/internal/experiment"
	"randpriv/internal/randomize"
	"randpriv/internal/recon"
	"randpriv/internal/stat"
	"randpriv/internal/synth"
	"randpriv/internal/tseries"
)

// TestFullPipelineOrdering is the headline integration check: on highly
// correlated data the attack hierarchy of the paper must hold end to end:
// BE-DR ≤ PCA-DR ≤ SF < UDR < NDR (RMSE).
func TestFullPipelineOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	spec := synth.Spectrum{M: 30, P: 4, Principal: 400, Tail: 4}
	vals, err := spec.Values()
	if err != nil {
		t.Fatal(err)
	}
	ds, err := synth.Generate(1500, vals, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	const sigma2 = 25.0
	scheme := randomize.NewAdditiveGaussian(math.Sqrt(sigma2))
	report, err := core.AssessPrivacy(ds.X, scheme, core.StandardAttacks(sigma2), rng)
	if err != nil {
		t.Fatal(err)
	}
	rmse := map[string]float64{}
	for _, r := range report.Results {
		if r.Err != nil {
			t.Fatalf("attack %s failed: %v", r.Attack, r.Err)
		}
		rmse[r.Attack] = r.RMSE
	}
	if !(rmse["BE-DR"] <= rmse["PCA-DR"]*1.03) {
		t.Errorf("BE-DR %v should not trail PCA-DR %v", rmse["BE-DR"], rmse["PCA-DR"])
	}
	if !(rmse["PCA-DR"] < rmse["SF"]) {
		t.Errorf("PCA-DR %v should beat SF %v in this regime", rmse["PCA-DR"], rmse["SF"])
	}
	if !(rmse["SF"] < rmse["UDR"]) {
		t.Errorf("SF %v should beat UDR %v on correlated data", rmse["SF"], rmse["UDR"])
	}
	if !(rmse["UDR"] < report.NDRBaseline) {
		t.Errorf("UDR %v should beat the NDR floor %v", rmse["UDR"], report.NDRBaseline)
	}
}

// TestDefenseEndToEnd verifies the paper's bottom line across modules:
// switching from i.i.d. to shape-matched correlated noise (same energy)
// must strictly increase the best attack's RMSE.
func TestDefenseEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	spec := synth.Spectrum{M: 24, P: 6, Principal: 400, Tail: 4}
	vals, err := spec.Values()
	if err != nil {
		t.Fatal(err)
	}
	ds, err := synth.Generate(1200, vals, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	const sigma2 = 25.0

	iid := randomize.NewAdditiveGaussian(math.Sqrt(sigma2))
	repIID, err := core.AssessPrivacy(ds.X, iid, core.StandardAttacks(sigma2), rng)
	if err != nil {
		t.Fatal(err)
	}

	corr, err := randomize.NewCorrelatedLike(ds.Cov, sigma2)
	if err != nil {
		t.Fatal(err)
	}
	pert, err := corr.Perturb(ds.X, rng)
	if err != nil {
		t.Fatal(err)
	}
	repCorr, err := core.Evaluate(ds.X, pert.Y, corr.Describe(),
		core.CorrelatedNoiseAttacks(corr.NoiseCovariance(), nil))
	if err != nil {
		t.Fatal(err)
	}

	a, b := repIID.MostDangerous(), repCorr.MostDangerous()
	if a == nil || b == nil {
		t.Fatal("missing attack results")
	}
	if b.RMSE <= a.RMSE*1.2 {
		t.Errorf("defense too weak: best attack RMSE %v (iid) vs %v (correlated)", a.RMSE, b.RMSE)
	}
	// Same noise energy on both sides.
	if math.Abs(corr.AverageVariance()-sigma2) > 1e-9 {
		t.Errorf("correlated scheme energy %v, want %v", corr.AverageVariance(), sigma2)
	}
}

// TestCSVRoundTripThroughAttack pushes generated data through the dataset
// layer (encode + decode) and verifies the attack result is unchanged —
// guarding against precision loss in the I/O path.
func TestCSVRoundTripThroughAttack(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	spec := synth.Spectrum{M: 6, P: 2, Principal: 400, Tail: 4}
	vals, err := spec.Values()
	if err != nil {
		t.Fatal(err)
	}
	ds, err := synth.Generate(400, vals, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	const sigma2 = 25.0
	pert, err := randomize.NewAdditiveGaussian(5).Perturb(ds.X, rng)
	if err != nil {
		t.Fatal(err)
	}

	tbl, err := dataset.New(nil, pert.Y)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := dataset.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}

	attack := recon.NewBEDR(sigma2)
	direct, err := attack.Reconstruct(pert.Y)
	if err != nil {
		t.Fatal(err)
	}
	viaCSV, err := attack.Reconstruct(back.Data())
	if err != nil {
		t.Fatal(err)
	}
	if !direct.EqualApprox(viaCSV, 1e-9) {
		t.Error("CSV round trip changed the reconstruction")
	}
}

// TestFigureDeterminism: the experiment harness must print identical
// series for identical configs.
func TestFigureDeterminism(t *testing.T) {
	cfg := experiment.Config{N: 200, Sigma2: 25, Seed: 42, SkipUDR: true}
	a, err := experiment.Experiment1(cfg, []int{5, 20})
	if err != nil {
		t.Fatal(err)
	}
	b, err := experiment.Experiment1(cfg, []int{5, 20})
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("Experiment1 not deterministic under a fixed seed")
	}
}

// TestCrossChannelAttacks: the two disclosure channels of §3 — attribute
// correlation (BE-DR) and serial dependency (Kalman smoothing) — must
// both, independently, beat the NDR floor on their respective structures.
func TestCrossChannelAttacks(t *testing.T) {
	rng := rand.New(rand.NewSource(4))

	// Channel 1: attribute correlation without serial structure.
	spec := synth.Spectrum{M: 10, P: 2, Principal: 400, Tail: 4}
	vals, err := spec.Values()
	if err != nil {
		t.Fatal(err)
	}
	ds, err := synth.Generate(800, vals, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	pert, err := randomize.NewAdditiveGaussian(5).Perturb(ds.X, rng)
	if err != nil {
		t.Fatal(err)
	}
	xhat, err := recon.NewBEDR(25).Reconstruct(pert.Y)
	if err != nil {
		t.Fatal(err)
	}
	if stat.RMSE(xhat, ds.X) >= stat.RMSE(pert.Y, ds.X) {
		t.Error("correlation channel attack failed to beat NDR")
	}

	// Channel 2: serial dependency in a single attribute.
	n := 3000
	x := make([]float64, n)
	prev := 0.0
	for i := range x {
		prev = 0.95*prev + rng.NormFloat64()
		x[i] = prev
	}
	y := make([]float64, n)
	for i := range y {
		y[i] = x[i] + 2*rng.NormFloat64()
	}
	sm, _, err := tseries.Reconstruct(y, 4)
	if err != nil {
		t.Fatal(err)
	}
	var mseS, mseN float64
	for i := range x {
		mseS += (sm[i] - x[i]) * (sm[i] - x[i])
		mseN += (y[i] - x[i]) * (y[i] - x[i])
	}
	if mseS >= mseN {
		t.Error("serial channel attack failed to beat NDR")
	}
}
