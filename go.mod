module randpriv

go 1.21
