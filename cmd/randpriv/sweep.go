package main

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"

	"randpriv/internal/core"
	"randpriv/internal/dataset"
	"randpriv/internal/experiment"
	"randpriv/internal/mat"
	"randpriv/internal/sweep"
)

// runSweepCmd executes a declarative parameter sweep locally: the spec's
// grid is compiled into a shared-scan plan (duplicate points collapsed,
// moment sketches built once per group) and evaluated in one engine run,
// the same machinery randprivd uses for multipart POST /v1/jobs
// submissions. With -figure it instead regenerates one of the paper's
// figures through that engine.
func runSweepCmd(args []string) error {
	fs := newFlagSet("sweep")
	data := fs.String("data", "", "input CSV path (spec mode; required)")
	specPath := fs.String("spec", "", "sweep spec JSON path ('-' for stdin; spec mode; required)")
	out := fs.String("out", "-", "result JSON path ('-' for stdout)")
	chunk := fs.Int("chunk", 4096, "default chunk rows when the spec omits them")
	maxPoints := fs.Int("max-points", 4096, "max grid points the spec may expand to (negative removes the cap)")
	figure := fs.Int("figure", 0, "regenerate paper figure 1-4 through the sweep engine instead of running a spec")
	n := fs.Int("n", 1000, "records per sweep point (-figure mode)")
	sigma := fs.Float64("sigma", 5, "noise standard deviation (-figure mode)")
	seed := fs.Int64("seed", 2005, "random seed (-figure mode)")
	skipUDR := fs.Bool("skip-udr", false, "skip the UDR series (-figure mode, much faster at m=100)")
	sweepFlag := fs.String("sweep", "", "comma-separated x values overriding the figure defaults (-figure mode)")
	csvPath := fs.String("csv", "", "also write the figure as CSV (-figure mode, figures 1-3)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}

	env := sweep.Env{Reg: core.Builtins(), WS: mat.NewWorkspace()}
	if *figure != 0 {
		return runFigureSweep(env, *figure, *n, *sigma, *seed, *skipUDR, *sweepFlag, *csvPath)
	}

	if *data == "" || *specPath == "" {
		return fmt.Errorf("sweep: -data and -spec are required (or use -figure 1-4)")
	}
	specBytes, err := readSpec(*specPath)
	if err != nil {
		return err
	}
	spec, err := sweep.ParseSpec(specBytes)
	if err != nil {
		return err
	}
	limit := *maxPoints
	if limit < 0 {
		limit = 0 // sweep.Expand: 0 means unbounded
	}
	grid, err := spec.Expand(env.Reg, *chunk, limit)
	if err != nil {
		return err
	}
	plan, err := sweep.Compile(env.Reg, grid)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "sweep: %d grid points (%d duplicates collapsed), %d planned passes vs %d sequential\n",
		len(plan.Points)+plan.Collapsed, plan.Collapsed, plan.PlannedPasses, plan.SequentialPasses)

	digest, err := fileDigest(*data)
	if err != nil {
		return err
	}
	chunkRows := spec.Chunk
	if chunkRows == 0 {
		chunkRows = *chunk
	}
	src, err := dataset.OpenCSVChunks(*data, chunkRows)
	if err != nil {
		return err
	}
	defer src.Close()
	res, err := sweep.Execute(context.Background(), sweep.ExecConfig{Env: env, Digest: digest}, plan, src, src.Names())
	if err != nil {
		return err
	}
	body, err := sweep.MarshalResult(res)
	if err != nil {
		return err
	}
	return withOutput(*out, func(w io.Writer) error {
		_, err := w.Write(body)
		return err
	})
}

// runFigureSweep regenerates one paper figure via the sweep engine.
// Figures 1-3 sweep the data substrate, so each x-value runs as its own
// single-point plan; figure 4 shares one substrate across its noise-path
// grid. Numbers differ from 'randpriv experiment' only through the
// perturbation RNG stream; the shapes are the same.
func runFigureSweep(env sweep.Env, id, n int, sigma float64, seed int64, skipUDR bool, sweepVals, csvPath string) error {
	if err := validSigma("sweep", sigma); err != nil {
		return err
	}
	xs, err := parseSweep(sweepVals)
	if err != nil {
		return fmt.Errorf("sweep: %w", err)
	}
	cfg := experiment.Config{N: n, Sigma2: sigma * sigma, Seed: seed, SkipUDR: skipUDR}

	var sw *experiment.SpectrumSweep
	switch id {
	case 1:
		sw, err = experiment.Figure1Substrates(cfg, toInts(xs))
	case 2:
		sw, err = experiment.Figure2Substrates(cfg, 100, toInts(xs))
	case 3:
		sw, err = experiment.Figure3Substrates(cfg, 100, 20, 400, xs)
	case 4:
		fig, err := env.Figure4(cfg, 100, 50, xs)
		if err != nil {
			return err
		}
		fmt.Print(fig)
		if csvPath != "" {
			return fmt.Errorf("sweep: -csv is not supported for figure 4 (two x columns); copy the text output")
		}
		return nil
	default:
		return fmt.Errorf("sweep: -figure must be 1-4, got %d", id)
	}
	if err != nil {
		return err
	}
	fig, err := env.SpectrumFigure(cfg, sw)
	if err != nil {
		return err
	}
	fmt.Print(fig)
	if csvPath == "" {
		return nil
	}
	return withOutput(csvPath, fig.WriteCSV)
}

// readSpec loads the sweep spec from path, or stdin when path is "-".
func readSpec(path string) ([]byte, error) {
	if path == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(path)
}

// fileDigest is the SHA-256 of the file's bytes, hex-encoded — the same
// dataset digest randprivd stamps into reports, so a local sweep's
// report bodies match the server's for the same CSV.
func fileDigest(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
