// Command randpriv is the CLI front end of the library: it generates
// synthetic correlated data, disguises it with the classic or improved
// randomization scheme, runs the reconstruction attacks, and regenerates
// the paper's figures.
//
// Usage:
//
//	randpriv gen        -n 1000 -m 20 -p 3 -out data.csv
//	randpriv perturb    -in data.csv -sigma 5 -out disguised.csv [-correlated] [-stream -chunk 4096]
//	randpriv attack     -original data.csv -disguised disguised.csv -sigma 5 [-stream -chunk 4096]
//	randpriv experiment -id 1 [-n 1000] [-workers 8] [-skip-udr] [-csv out.csv]
//	randpriv utility    [-n 2000] [-m 20]
//	randpriv sweep      -data data.csv -spec spec.json [-out result.json]
//	randpriv sweep      -figure 1 [-n 1000] [-skip-udr] [-csv out.csv]
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = runGen(os.Args[2:])
	case "perturb":
		err = runPerturb(os.Args[2:])
	case "attack":
		err = runAttack(os.Args[2:])
	case "experiment":
		err = runExperiment(os.Args[2:])
	case "utility":
		err = runUtility(os.Args[2:])
	case "sweep":
		err = runSweepCmd(os.Args[2:])
	case "smooth":
		err = runSmooth(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "randpriv: unknown command %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if errors.Is(err, flag.ErrHelp) {
		// -h/-help: the flag set already printed its usage.
		os.Exit(0)
	}
	var uerr usageError
	if errors.As(err, &uerr) {
		// Parse failures were already reported by the flag set; keep the
		// traditional usage-error exit code.
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "randpriv: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `randpriv — privacy analysis of randomized data (Huang, Du & Chen, SIGMOD 2005)

Commands:
  gen         generate a synthetic correlated data set (CSV)
  perturb     disguise a data set with additive or correlated noise
  attack      run the reconstruction attacks and print a privacy report
  experiment  regenerate one of the paper's figures (1-4)
  utility     run the mining-utility comparison of the two schemes
  sweep       compile a parameter-grid spec into a shared-scan plan and run it
              (or regenerate a paper figure through the sweep engine)
  smooth      time-series attack: denoise a disguised CSV column-by-column

Run 'randpriv <command> -h' for per-command flags.
`)
}
