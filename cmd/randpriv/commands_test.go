package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"randpriv/internal/dataset"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

// TestMain doubles the test binary as the CLI itself: with
// RANDPRIV_RUN_MAIN=1 it runs main() instead of the tests, so the golden
// tests can assert real exit codes and the real stdout/stderr split
// without building a second binary.
func TestMain(m *testing.M) {
	if os.Getenv("RANDPRIV_RUN_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// runCLI executes the randpriv CLI (via the re-exec trick above) and
// returns its stdout, stderr and exit code.
func runCLI(t *testing.T, args ...string) (stdout, stderr string, exitCode int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "RANDPRIV_RUN_MAIN=1")
	var outBuf, errBuf bytes.Buffer
	cmd.Stdout, cmd.Stderr = &outBuf, &errBuf
	err := cmd.Run()
	code := 0
	if err != nil {
		var ee *exec.ExitError
		if !errors.As(err, &ee) {
			t.Fatalf("run %v: %v", args, err)
		}
		code = ee.ExitCode()
	}
	return outBuf.String(), errBuf.String(), code
}

// checkGolden compares got against testdata/<name>.golden, rewriting the
// file under -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (rerun with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s: output drifted from golden file (rerun with -update if intended)\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

func tempPath(t *testing.T, name string) string {
	t.Helper()
	return filepath.Join(t.TempDir(), name)
}

func TestGenPerturbAttackPipeline(t *testing.T) {
	data := tempPath(t, "data.csv")
	disg := tempPath(t, "disg.csv")

	if err := runGen([]string{"-n", "300", "-m", "8", "-p", "2", "-seed", "3", "-out", data}); err != nil {
		t.Fatalf("gen: %v", err)
	}
	tbl, err := loadTable(data)
	if err != nil {
		t.Fatalf("loadTable: %v", err)
	}
	if n, m := tbl.Dims(); n != 300 || m != 8 {
		t.Fatalf("generated dims %dx%d, want 300x8", n, m)
	}

	if err := runPerturb([]string{"-in", data, "-sigma", "5", "-seed", "4", "-out", disg}); err != nil {
		t.Fatalf("perturb: %v", err)
	}
	dTbl, err := loadTable(disg)
	if err != nil {
		t.Fatalf("loadTable disguised: %v", err)
	}
	if n, m := dTbl.Dims(); n != 300 || m != 8 {
		t.Fatalf("disguised dims %dx%d, want 300x8", n, m)
	}
	// The disguised data must differ from the original.
	if tbl.Data().EqualApprox(dTbl.Data(), 1e-9) {
		t.Fatal("perturb produced identical data")
	}

	if err := runAttack([]string{"-original", data, "-disguised", disg, "-sigma", "5"}); err != nil {
		t.Fatalf("attack: %v", err)
	}
}

func TestPerturbCorrelatedFlag(t *testing.T) {
	data := tempPath(t, "data.csv")
	disg := tempPath(t, "disg.csv")
	if err := runGen([]string{"-n", "200", "-m", "6", "-p", "2", "-out", data}); err != nil {
		t.Fatalf("gen: %v", err)
	}
	if err := runPerturb([]string{"-in", data, "-sigma", "5", "-correlated", "-out", disg}); err != nil {
		t.Fatalf("perturb -correlated: %v", err)
	}
	if err := runAttack([]string{"-original", data, "-disguised", disg, "-sigma", "5", "-correlated"}); err != nil {
		t.Fatalf("attack -correlated: %v", err)
	}
}

func TestPerturbRequiresInput(t *testing.T) {
	if err := runPerturb([]string{"-sigma", "5"}); err == nil {
		t.Fatal("perturb without -in must error")
	}
}

func TestAttackRequiresPaths(t *testing.T) {
	if err := runAttack([]string{"-sigma", "5"}); err == nil {
		t.Fatal("attack without paths must error")
	}
}

func TestAttackMissingFile(t *testing.T) {
	missing := tempPath(t, "nope.csv")
	if err := runAttack([]string{"-original", missing, "-disguised", missing}); err == nil {
		t.Fatal("attack on missing files must error")
	}
}

func TestRunExperimentSmall(t *testing.T) {
	csvOut := tempPath(t, "fig.csv")
	// Figure 4 at small n is the fastest full sweep; figure 1-3 default
	// sweeps go to m=100, so use figure 4 for the CLI smoke test.
	if err := runExperiment([]string{"-id", "4", "-n", "120", "-skip-udr"}); err != nil {
		t.Fatalf("experiment 4: %v", err)
	}
	_ = csvOut
}

func TestRunExperimentBadID(t *testing.T) {
	if err := runExperiment([]string{"-id", "9"}); err == nil {
		t.Fatal("id=9 must error")
	}
}

func TestRunExperimentFigure4CSVUnsupported(t *testing.T) {
	if err := runExperiment([]string{"-id", "4", "-n", "120", "-csv", tempPath(t, "x.csv")}); err == nil {
		t.Fatal("figure 4 with -csv must error")
	}
}

func TestRunExperimentCustomSweeps(t *testing.T) {
	// Tiny custom sweeps keep figures 1-3 fast enough for tests.
	for _, args := range [][]string{
		{"-id", "1", "-n", "150", "-skip-udr", "-sweep", "5,10"},
		{"-id", "2", "-n", "150", "-skip-udr", "-sweep", "2,5"},
		{"-id", "3", "-n", "150", "-skip-udr", "-sweep", "1,25"},
	} {
		if err := runExperiment(args); err != nil {
			t.Fatalf("experiment %v: %v", args, err)
		}
	}
}

func TestRunExperimentCSVOutput(t *testing.T) {
	out := tempPath(t, "fig1.csv")
	if err := runExperiment([]string{"-id", "1", "-n", "120", "-skip-udr", "-sweep", "5,10", "-csv", out}); err != nil {
		t.Fatalf("experiment with csv: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("read csv: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d, want 3", len(lines))
	}
}

func TestRunExperimentBadSweep(t *testing.T) {
	if err := runExperiment([]string{"-id", "1", "-sweep", "5,banana"}); err == nil {
		t.Fatal("non-numeric sweep must error")
	}
}

func TestRunSmooth(t *testing.T) {
	// Build a small serially-dependent CSV.
	in := tempPath(t, "series.csv")
	out := tempPath(t, "smoothed.csv")
	var b strings.Builder
	b.WriteString("load\n")
	v := 0.0
	for i := 0; i < 200; i++ {
		v = 0.9*v + float64((i*37)%11)/11 - 0.5 // deterministic pseudo-noise
		fmt.Fprintf(&b, "%g\n", 10+v)
	}
	if err := os.WriteFile(in, []byte(b.String()), 0o644); err != nil {
		t.Fatalf("write input: %v", err)
	}
	if err := runSmooth([]string{"-in", in, "-sigma", "0.3", "-out", out}); err != nil {
		t.Fatalf("smooth: %v", err)
	}
	tbl, err := loadTable(out)
	if err != nil {
		t.Fatalf("load output: %v", err)
	}
	if n, m := tbl.Dims(); n != 200 || m != 1 {
		t.Fatalf("output dims %dx%d, want 200x1", n, m)
	}
}

func TestRunSmoothRequiresInput(t *testing.T) {
	if err := runSmooth(nil); err == nil {
		t.Fatal("smooth without -in must error")
	}
}

func TestRunUtility(t *testing.T) {
	if err := runUtility([]string{"-n", "300", "-m", "6"}); err != nil {
		t.Fatalf("utility: %v", err)
	}
}

// TestBadFlagReturnsError covers the ContinueOnError switch: an unknown
// flag must surface as an error on main's exit path, not call os.Exit(2)
// from inside the flag package.
func TestBadFlagReturnsError(t *testing.T) {
	for name, run := range map[string]func([]string) error{
		"gen":        runGen,
		"perturb":    runPerturb,
		"attack":     runAttack,
		"experiment": runExperiment,
		"smooth":     runSmooth,
		"utility":    runUtility,
	} {
		if err := run([]string{"-definitely-not-a-flag"}); err == nil {
			t.Errorf("%s: unknown flag must return an error", name)
		}
		if err := run([]string{"-h"}); !errors.Is(err, flag.ErrHelp) {
			t.Errorf("%s: -h returned %v, want flag.ErrHelp", name, err)
		}
	}
}

func TestAttackRejectsBadSigma(t *testing.T) {
	data := tempPath(t, "data.csv")
	if err := runGen([]string{"-n", "50", "-m", "4", "-p", "2", "-out", data}); err != nil {
		t.Fatalf("gen: %v", err)
	}
	for _, sigma := range []string{"0", "-3", "NaN", "+Inf"} {
		err := runAttack([]string{"-original", data, "-disguised", data, "-sigma", sigma})
		if err == nil || !strings.Contains(err.Error(), "-sigma must be a positive finite number") {
			t.Errorf("sigma=%s: err = %v, want -sigma validation failure", sigma, err)
		}
	}
}

func TestPerturbRejectsBadSigma(t *testing.T) {
	data := tempPath(t, "data.csv")
	if err := runGen([]string{"-n", "50", "-m", "4", "-p", "2", "-out", data}); err != nil {
		t.Fatalf("gen: %v", err)
	}
	if err := runPerturb([]string{"-in", data, "-sigma", "0"}); err == nil {
		t.Error("perturb with sigma=0 must error")
	}
}

// TestAttackCorrelatedConstantData covers the trace guard: (near-)constant
// disguised data has ~zero covariance trace, so the σ²·m/trace scale
// would blow up; the CLI must fail with a diagnostic instead.
func TestAttackCorrelatedConstantData(t *testing.T) {
	constant := tempPath(t, "const.csv")
	var b strings.Builder
	b.WriteString("a,b\n")
	for i := 0; i < 40; i++ {
		b.WriteString("3.5,-1\n")
	}
	if err := os.WriteFile(constant, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, extra := range [][]string{nil, {"-stream", "-chunk", "8"}} {
		args := append([]string{"-original", constant, "-disguised", constant, "-correlated"}, extra...)
		err := runAttack(args)
		if err == nil || !strings.Contains(err.Error(), "(near-)constant") {
			t.Errorf("args %v: err = %v, want near-constant diagnostic", extra, err)
		}
	}
}

// TestPerturbStreamMatchesInMemory checks the streaming publisher path:
// same seed, same noise order, byte-identical output file.
func TestPerturbStreamMatchesInMemory(t *testing.T) {
	data := tempPath(t, "data.csv")
	if err := runGen([]string{"-n", "150", "-m", "5", "-p", "2", "-seed", "9", "-out", data}); err != nil {
		t.Fatalf("gen: %v", err)
	}
	inMem := tempPath(t, "mem.csv")
	streamed := tempPath(t, "stream.csv")
	if err := runPerturb([]string{"-in", data, "-sigma", "4", "-seed", "11", "-out", inMem}); err != nil {
		t.Fatalf("perturb: %v", err)
	}
	if err := runPerturb([]string{"-in", data, "-sigma", "4", "-seed", "11", "-stream", "-chunk", "32", "-out", streamed}); err != nil {
		t.Fatalf("perturb -stream: %v", err)
	}
	a, err := os.ReadFile(inMem)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(streamed)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b2) {
		t.Fatal("streaming perturb output differs from in-memory output")
	}
}

func TestAttackStreamPipeline(t *testing.T) {
	data := tempPath(t, "data.csv")
	disg := tempPath(t, "disg.csv")
	if err := runGen([]string{"-n", "300", "-m", "8", "-p", "2", "-seed", "3", "-out", data}); err != nil {
		t.Fatalf("gen: %v", err)
	}
	if err := runPerturb([]string{"-in", data, "-sigma", "5", "-seed", "4", "-stream", "-out", disg}); err != nil {
		t.Fatalf("perturb: %v", err)
	}
	if err := runAttack([]string{"-original", data, "-disguised", disg, "-sigma", "5", "-stream", "-chunk", "64"}); err != nil {
		t.Fatalf("attack -stream: %v", err)
	}
	// Correlated streaming variant over a correlated-noise disguise.
	disg2 := tempPath(t, "disg2.csv")
	if err := runPerturb([]string{"-in", data, "-sigma", "5", "-correlated", "-stream", "-chunk", "50", "-out", disg2}); err != nil {
		t.Fatalf("perturb -correlated -stream: %v", err)
	}
	if err := runAttack([]string{"-original", data, "-disguised", disg2, "-sigma", "5", "-correlated", "-stream", "-chunk", "64"}); err != nil {
		t.Fatalf("attack -correlated -stream: %v", err)
	}
}

func TestAttackStreamBadChunk(t *testing.T) {
	data := tempPath(t, "data.csv")
	if err := runGen([]string{"-n", "20", "-m", "3", "-p", "1", "-out", data}); err != nil {
		t.Fatalf("gen: %v", err)
	}
	if err := runAttack([]string{"-original", data, "-disguised", data, "-stream", "-chunk", "0"}); err == nil {
		t.Error("chunk=0 must error")
	}
	if err := runPerturb([]string{"-in", data, "-stream", "-chunk", "-5"}); err == nil {
		t.Error("negative chunk must error")
	}
}

// --- Golden tests: one per subcommand, pinning exit code, the
// stdout/stderr split, and byte-stable output for fixed seeds. ---

func TestGoldenGen(t *testing.T) {
	stdout, stderr, code := runCLI(t, "gen", "-n", "6", "-m", "3", "-p", "1", "-seed", "7")
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, stderr)
	}
	if stderr != "" {
		t.Errorf("gen wrote to stderr: %q", stderr)
	}
	checkGolden(t, "gen", stdout)
}

func TestGoldenPerturb(t *testing.T) {
	data := tempPath(t, "data.csv")
	if _, stderr, code := runCLI(t, "gen", "-n", "8", "-m", "3", "-p", "1", "-seed", "7", "-out", data); code != 0 {
		t.Fatalf("gen: exit %d, stderr: %s", code, stderr)
	}
	stdout, stderr, code := runCLI(t, "perturb", "-in", data, "-sigma", "2", "-seed", "5")
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, stderr)
	}
	if want := "perturbed with additive i.i.d. noise (var=4)\n"; stderr != want {
		t.Errorf("stderr = %q, want %q", stderr, want)
	}
	checkGolden(t, "perturb", stdout)
}

func TestGoldenAttack(t *testing.T) {
	data := tempPath(t, "data.csv")
	disg := tempPath(t, "disg.csv")
	if _, stderr, code := runCLI(t, "gen", "-n", "200", "-m", "5", "-p", "2", "-seed", "7", "-out", data); code != 0 {
		t.Fatalf("gen: exit %d, stderr: %s", code, stderr)
	}
	if _, stderr, code := runCLI(t, "perturb", "-in", data, "-sigma", "3", "-seed", "5", "-out", disg); code != 0 {
		t.Fatalf("perturb: exit %d, stderr: %s", code, stderr)
	}
	stdout, stderr, code := runCLI(t, "attack", "-original", data, "-disguised", disg, "-sigma", "3")
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, stderr)
	}
	if stderr != "" {
		t.Errorf("attack wrote to stderr: %q", stderr)
	}
	checkGolden(t, "attack", stdout)
}

func TestGoldenExperiment(t *testing.T) {
	stdout, stderr, code := runCLI(t, "experiment", "-id", "1", "-n", "80", "-seed", "3", "-skip-udr", "-sweep", "6,10")
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, stderr)
	}
	checkGolden(t, "experiment", stdout)
}

func TestGoldenUtility(t *testing.T) {
	stdout, stderr, code := runCLI(t, "utility", "-n", "200", "-m", "5", "-seed", "9")
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, stderr)
	}
	if stderr != "" {
		t.Errorf("utility wrote to stderr: %q", stderr)
	}
	checkGolden(t, "utility", stdout)
}

func TestGoldenSmooth(t *testing.T) {
	in := tempPath(t, "series.csv")
	var b strings.Builder
	b.WriteString("load\n")
	v := 0.0
	for i := 0; i < 120; i++ {
		v = 0.9*v + float64((i*37)%11)/11 - 0.5
		fmt.Fprintf(&b, "%g\n", 10+v)
	}
	if err := os.WriteFile(in, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout, stderr, code := runCLI(t, "smooth", "-in", in, "-sigma", "0.3")
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "AR(1)") {
		t.Errorf("stderr missing the AR(1) model line: %q", stderr)
	}
	checkGolden(t, "smooth", stdout)
}

// TestCLIExitCodes pins the three exit paths of main for every
// subcommand: 0 for -h, 2 for flag-parse failures (with the flag
// package's diagnostic on stderr), 1 for runtime errors (with the
// randpriv: prefix on stderr).
func TestCLIExitCodes(t *testing.T) {
	subcommands := []string{"gen", "perturb", "attack", "experiment", "utility", "smooth"}
	for _, cmd := range subcommands {
		if stdout, stderr, code := runCLI(t, cmd, "-h"); code != 0 {
			t.Errorf("%s -h: exit %d (stderr %q), want 0", cmd, code, stderr)
		} else if stdout != "" {
			t.Errorf("%s -h: usage must go to stderr, stdout got %q", cmd, stdout)
		}
		_, stderr, code := runCLI(t, cmd, "-definitely-not-a-flag")
		if code != 2 {
			t.Errorf("%s with bad flag: exit %d, want 2", cmd, code)
		}
		if !strings.Contains(stderr, "flag provided but not defined") {
			t.Errorf("%s with bad flag: stderr %q missing flag diagnostic", cmd, stderr)
		}
	}

	// Runtime errors exit 1 with the randpriv: prefix.
	_, stderr, code := runCLI(t, "perturb", "-sigma", "5")
	if code != 1 {
		t.Errorf("perturb without -in: exit %d, want 1", code)
	}
	if !strings.Contains(stderr, "randpriv: perturb: -in is required") {
		t.Errorf("perturb without -in: stderr %q", stderr)
	}

	// Unknown command and no command both exit 2 with usage.
	if _, stderr, code := runCLI(t, "no-such-command"); code != 2 || !strings.Contains(stderr, "unknown command") {
		t.Errorf("unknown command: exit %d, stderr %q", code, stderr)
	}
	if _, stderr, code := runCLI(t); code != 2 || !strings.Contains(stderr, "Commands:") {
		t.Errorf("no command: exit %d, stderr %q", code, stderr)
	}
	if _, _, code := runCLI(t, "help"); code != 0 {
		t.Errorf("help: exit %d, want 0", code)
	}
}

func TestSaveTableStdout(t *testing.T) {
	tbl, err := dataset.ReadCSV(strings.NewReader("a\n1\n2\n"))
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	// Redirect stdout to a pipe to keep test output clean.
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatalf("pipe: %v", err)
	}
	os.Stdout = w
	saveErr := saveTable(tbl, "-")
	w.Close()
	os.Stdout = old
	if saveErr != nil {
		t.Fatalf("saveTable: %v", saveErr)
	}
	buf := make([]byte, 64)
	n, _ := r.Read(buf)
	if !strings.HasPrefix(string(buf[:n]), "a\n1\n2\n") {
		t.Errorf("stdout content = %q", string(buf[:n]))
	}
}
