package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"randpriv/internal/dataset"
)

func tempPath(t *testing.T, name string) string {
	t.Helper()
	return filepath.Join(t.TempDir(), name)
}

func TestGenPerturbAttackPipeline(t *testing.T) {
	data := tempPath(t, "data.csv")
	disg := tempPath(t, "disg.csv")

	if err := runGen([]string{"-n", "300", "-m", "8", "-p", "2", "-seed", "3", "-out", data}); err != nil {
		t.Fatalf("gen: %v", err)
	}
	tbl, err := loadTable(data)
	if err != nil {
		t.Fatalf("loadTable: %v", err)
	}
	if n, m := tbl.Dims(); n != 300 || m != 8 {
		t.Fatalf("generated dims %dx%d, want 300x8", n, m)
	}

	if err := runPerturb([]string{"-in", data, "-sigma", "5", "-seed", "4", "-out", disg}); err != nil {
		t.Fatalf("perturb: %v", err)
	}
	dTbl, err := loadTable(disg)
	if err != nil {
		t.Fatalf("loadTable disguised: %v", err)
	}
	if n, m := dTbl.Dims(); n != 300 || m != 8 {
		t.Fatalf("disguised dims %dx%d, want 300x8", n, m)
	}
	// The disguised data must differ from the original.
	if tbl.Data().EqualApprox(dTbl.Data(), 1e-9) {
		t.Fatal("perturb produced identical data")
	}

	if err := runAttack([]string{"-original", data, "-disguised", disg, "-sigma", "5"}); err != nil {
		t.Fatalf("attack: %v", err)
	}
}

func TestPerturbCorrelatedFlag(t *testing.T) {
	data := tempPath(t, "data.csv")
	disg := tempPath(t, "disg.csv")
	if err := runGen([]string{"-n", "200", "-m", "6", "-p", "2", "-out", data}); err != nil {
		t.Fatalf("gen: %v", err)
	}
	if err := runPerturb([]string{"-in", data, "-sigma", "5", "-correlated", "-out", disg}); err != nil {
		t.Fatalf("perturb -correlated: %v", err)
	}
	if err := runAttack([]string{"-original", data, "-disguised", disg, "-sigma", "5", "-correlated"}); err != nil {
		t.Fatalf("attack -correlated: %v", err)
	}
}

func TestPerturbRequiresInput(t *testing.T) {
	if err := runPerturb([]string{"-sigma", "5"}); err == nil {
		t.Fatal("perturb without -in must error")
	}
}

func TestAttackRequiresPaths(t *testing.T) {
	if err := runAttack([]string{"-sigma", "5"}); err == nil {
		t.Fatal("attack without paths must error")
	}
}

func TestAttackMissingFile(t *testing.T) {
	missing := tempPath(t, "nope.csv")
	if err := runAttack([]string{"-original", missing, "-disguised", missing}); err == nil {
		t.Fatal("attack on missing files must error")
	}
}

func TestRunExperimentSmall(t *testing.T) {
	csvOut := tempPath(t, "fig.csv")
	// Figure 4 at small n is the fastest full sweep; figure 1-3 default
	// sweeps go to m=100, so use figure 4 for the CLI smoke test.
	if err := runExperiment([]string{"-id", "4", "-n", "120", "-skip-udr"}); err != nil {
		t.Fatalf("experiment 4: %v", err)
	}
	_ = csvOut
}

func TestRunExperimentBadID(t *testing.T) {
	if err := runExperiment([]string{"-id", "9"}); err == nil {
		t.Fatal("id=9 must error")
	}
}

func TestRunExperimentFigure4CSVUnsupported(t *testing.T) {
	if err := runExperiment([]string{"-id", "4", "-n", "120", "-csv", tempPath(t, "x.csv")}); err == nil {
		t.Fatal("figure 4 with -csv must error")
	}
}

func TestRunExperimentCustomSweeps(t *testing.T) {
	// Tiny custom sweeps keep figures 1-3 fast enough for tests.
	for _, args := range [][]string{
		{"-id", "1", "-n", "150", "-skip-udr", "-sweep", "5,10"},
		{"-id", "2", "-n", "150", "-skip-udr", "-sweep", "2,5"},
		{"-id", "3", "-n", "150", "-skip-udr", "-sweep", "1,25"},
	} {
		if err := runExperiment(args); err != nil {
			t.Fatalf("experiment %v: %v", args, err)
		}
	}
}

func TestRunExperimentCSVOutput(t *testing.T) {
	out := tempPath(t, "fig1.csv")
	if err := runExperiment([]string{"-id", "1", "-n", "120", "-skip-udr", "-sweep", "5,10", "-csv", out}); err != nil {
		t.Fatalf("experiment with csv: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("read csv: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d, want 3", len(lines))
	}
}

func TestRunExperimentBadSweep(t *testing.T) {
	if err := runExperiment([]string{"-id", "1", "-sweep", "5,banana"}); err == nil {
		t.Fatal("non-numeric sweep must error")
	}
}

func TestRunSmooth(t *testing.T) {
	// Build a small serially-dependent CSV.
	in := tempPath(t, "series.csv")
	out := tempPath(t, "smoothed.csv")
	var b strings.Builder
	b.WriteString("load\n")
	v := 0.0
	for i := 0; i < 200; i++ {
		v = 0.9*v + float64((i*37)%11)/11 - 0.5 // deterministic pseudo-noise
		fmt.Fprintf(&b, "%g\n", 10+v)
	}
	if err := os.WriteFile(in, []byte(b.String()), 0o644); err != nil {
		t.Fatalf("write input: %v", err)
	}
	if err := runSmooth([]string{"-in", in, "-sigma", "0.3", "-out", out}); err != nil {
		t.Fatalf("smooth: %v", err)
	}
	tbl, err := loadTable(out)
	if err != nil {
		t.Fatalf("load output: %v", err)
	}
	if n, m := tbl.Dims(); n != 200 || m != 1 {
		t.Fatalf("output dims %dx%d, want 200x1", n, m)
	}
}

func TestRunSmoothRequiresInput(t *testing.T) {
	if err := runSmooth(nil); err == nil {
		t.Fatal("smooth without -in must error")
	}
}

func TestRunUtility(t *testing.T) {
	if err := runUtility([]string{"-n", "300", "-m", "6"}); err != nil {
		t.Fatalf("utility: %v", err)
	}
}

func TestSaveTableStdout(t *testing.T) {
	tbl, err := dataset.ReadCSV(strings.NewReader("a\n1\n2\n"))
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	// Redirect stdout to a pipe to keep test output clean.
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatalf("pipe: %v", err)
	}
	os.Stdout = w
	saveErr := saveTable(tbl, "-")
	w.Close()
	os.Stdout = old
	if saveErr != nil {
		t.Fatalf("saveTable: %v", saveErr)
	}
	buf := make([]byte, 64)
	n, _ := r.Read(buf)
	if !strings.HasPrefix(string(buf[:n]), "a\n1\n2\n") {
		t.Errorf("stdout content = %q", string(buf[:n]))
	}
}
