package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"randpriv/internal/core"
	"randpriv/internal/dataset"
	"randpriv/internal/experiment"
	"randpriv/internal/mat"
	"randpriv/internal/randomize"
	"randpriv/internal/stat"
	"randpriv/internal/synth"
	"randpriv/internal/tseries"
)

// loadTable reads a CSV table from path.
func loadTable(path string) (*dataset.Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dataset.ReadCSV(f)
}

// saveTable writes a CSV table to path (stdout when path is "-").
func saveTable(t *dataset.Table, path string) error {
	if path == "-" {
		return t.WriteCSV(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return t.WriteCSV(f)
}

func runGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	n := fs.Int("n", 1000, "number of records")
	m := fs.Int("m", 20, "number of attributes")
	p := fs.Int("p", 3, "number of principal components")
	principal := fs.Float64("principal", 400, "principal eigenvalue")
	tail := fs.Float64("tail", 4, "non-principal eigenvalue")
	seed := fs.Int64("seed", 1, "random seed")
	out := fs.String("out", "-", "output CSV path ('-' for stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec := synth.Spectrum{M: *m, P: *p, Principal: *principal, Tail: *tail}
	vals, err := spec.Values()
	if err != nil {
		return err
	}
	ds, err := synth.Generate(*n, vals, nil, rand.New(rand.NewSource(*seed)))
	if err != nil {
		return err
	}
	tbl, err := dataset.New(nil, ds.X)
	if err != nil {
		return err
	}
	return saveTable(tbl, *out)
}

func runPerturb(args []string) error {
	fs := flag.NewFlagSet("perturb", flag.ExitOnError)
	in := fs.String("in", "", "input CSV path (required)")
	out := fs.String("out", "-", "output CSV path ('-' for stdout)")
	sigma := fs.Float64("sigma", 5, "noise standard deviation")
	correlated := fs.Bool("correlated", false, "use the improved correlated-noise scheme")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("perturb: -in is required")
	}
	tbl, err := loadTable(*in)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	var scheme randomize.Scheme
	if *correlated {
		cov := stat.CovarianceMatrix(tbl.Data())
		c, err := randomize.NewCorrelatedLike(cov, *sigma**sigma)
		if err != nil {
			return err
		}
		scheme = c
	} else {
		scheme = randomize.NewAdditiveGaussian(*sigma)
	}
	pert, err := scheme.Perturb(tbl.Data(), rng)
	if err != nil {
		return err
	}
	outTbl, err := dataset.New(tbl.Names(), pert.Y)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "perturbed with %s\n", scheme.Describe())
	return saveTable(outTbl, *out)
}

func runAttack(args []string) error {
	fs := flag.NewFlagSet("attack", flag.ExitOnError)
	originalPath := fs.String("original", "", "ground-truth CSV path (required)")
	disguisedPath := fs.String("disguised", "", "disguised CSV path (required)")
	sigma := fs.Float64("sigma", 5, "noise standard deviation assumed by the attacks")
	correlated := fs.Bool("correlated", false, "attack assuming correlated noise shaped like the disguised data")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *originalPath == "" || *disguisedPath == "" {
		return fmt.Errorf("attack: -original and -disguised are required")
	}
	orig, err := loadTable(*originalPath)
	if err != nil {
		return err
	}
	disg, err := loadTable(*disguisedPath)
	if err != nil {
		return err
	}
	sigma2 := *sigma * *sigma
	attacks := core.StandardAttacks(sigma2)
	desc := fmt.Sprintf("additive noise, σ=%.4g (assumed)", *sigma)
	if *correlated {
		// Without the publisher's Σr, the best adversary model is the
		// disguised data's own correlation shape at the stated energy.
		covY := stat.CovarianceMatrix(disg.Data())
		scale := sigma2 * float64(covY.Rows()) / mat.Trace(covY)
		noiseCov := mat.Scale(scale, covY)
		attacks = core.CorrelatedNoiseAttacks(noiseCov, nil)
		desc = fmt.Sprintf("correlated noise, avg σ²=%.4g (assumed, shape from disguised data)", sigma2)
	}
	report, err := core.Evaluate(orig.Data(), disg.Data(), desc, attacks)
	if err != nil {
		return err
	}
	fmt.Print(report)
	return nil
}

// parseSweep splits a comma-separated list of numbers.
func parseSweep(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, field := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(field), 64)
		if err != nil {
			return nil, fmt.Errorf("bad sweep value %q: %w", field, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func toInts(vals []float64) []int {
	out := make([]int, len(vals))
	for i, v := range vals {
		out[i] = int(v)
	}
	return out
}

func runExperiment(args []string) error {
	fs := flag.NewFlagSet("experiment", flag.ExitOnError)
	id := fs.Int("id", 1, "figure number to regenerate (1-4)")
	n := fs.Int("n", 1000, "records per sweep point")
	sigma := fs.Float64("sigma", 5, "noise standard deviation")
	seed := fs.Int64("seed", 2005, "random seed")
	skipUDR := fs.Bool("skip-udr", false, "skip the UDR series (much faster at m=100)")
	csvPath := fs.String("csv", "", "also write the figure as CSV to this path")
	sweep := fs.String("sweep", "", "comma-separated sweep values overriding the paper defaults (m for fig 1, p for fig 2, tail λ for fig 3, path t for fig 4)")
	workers := fs.Int("workers", 0, "sweep-point worker pool size (0 = all cores); results are identical at any setting")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sweepVals, err := parseSweep(*sweep)
	if err != nil {
		return fmt.Errorf("experiment: %w", err)
	}
	cfg := experiment.Config{N: *n, Sigma2: *sigma * *sigma, Seed: *seed, SkipUDR: *skipUDR, Workers: *workers}

	writeCSV := func(fig *experiment.Figure) error {
		if *csvPath == "" {
			return nil
		}
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		return fig.WriteCSV(f)
	}

	switch *id {
	case 1:
		fig, err := experiment.Experiment1(cfg, toInts(sweepVals))
		if err != nil {
			return err
		}
		fmt.Print(fig)
		return writeCSV(fig)
	case 2:
		fig, err := experiment.Experiment2(cfg, toInts(sweepVals))
		if err != nil {
			return err
		}
		fmt.Print(fig)
		return writeCSV(fig)
	case 3:
		fig, err := experiment.Experiment3(cfg, sweepVals)
		if err != nil {
			return err
		}
		fmt.Print(fig)
		return writeCSV(fig)
	case 4:
		fig, err := experiment.Experiment4(cfg, sweepVals)
		if err != nil {
			return err
		}
		fmt.Print(fig)
		if *csvPath != "" {
			return fmt.Errorf("experiment: -csv is not supported for figure 4 (two x columns); copy the text output")
		}
		return nil
	default:
		return fmt.Errorf("experiment: -id must be 1-4, got %d", *id)
	}
}

// runSmooth applies the sample-dependency (time-series) attack to every
// column of a disguised CSV and writes the smoothed reconstruction.
func runSmooth(args []string) error {
	fs := flag.NewFlagSet("smooth", flag.ExitOnError)
	in := fs.String("in", "", "disguised CSV path (required); rows are time steps")
	out := fs.String("out", "-", "output CSV path ('-' for stdout)")
	sigma := fs.Float64("sigma", 5, "noise standard deviation")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("smooth: -in is required")
	}
	tbl, err := loadTable(*in)
	if err != nil {
		return err
	}
	n, m := tbl.Dims()
	sigma2 := *sigma * *sigma
	result := mat.Zeros(n, m)
	for j, name := range tbl.Names() {
		col, err := tbl.Column(name)
		if err != nil {
			return err
		}
		smoothed, model, err := tseries.Reconstruct(col, sigma2)
		if err != nil {
			return fmt.Errorf("smooth: column %q: %w", name, err)
		}
		result.SetCol(j, smoothed)
		fmt.Fprintf(os.Stderr, "column %-12s AR(1): φ=%.3f innovation=%.3f mean=%.3f\n",
			name, model.Phi, model.Q, model.C)
	}
	outTbl, err := dataset.New(tbl.Names(), result)
	if err != nil {
		return err
	}
	return saveTable(outTbl, *out)
}

func runUtility(args []string) error {
	fs := flag.NewFlagSet("utility", flag.ExitOnError)
	n := fs.Int("n", 2000, "number of records")
	m := fs.Int("m", 20, "number of attributes")
	sigma := fs.Float64("sigma", 5, "noise standard deviation")
	seed := fs.Int64("seed", 2005, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := experiment.Config{N: *n, Sigma2: *sigma * *sigma, Seed: *seed}
	res, err := experiment.UtilityExperiment(cfg, *m, rand.New(rand.NewSource(*seed)))
	if err != nil {
		return err
	}
	fmt.Println(res)
	return nil
}
