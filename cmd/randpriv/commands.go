package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"randpriv/internal/core"
	"randpriv/internal/dataset"
	"randpriv/internal/experiment"
	"randpriv/internal/mat"
	"randpriv/internal/randomize"
	"randpriv/internal/recon"
	"randpriv/internal/stat"
	"randpriv/internal/stream"
	"randpriv/internal/synth"
	"randpriv/internal/tseries"
)

// newFlagSet builds a subcommand flag set that reports parse failures as
// ordinary errors instead of calling os.Exit(2) from inside the flag
// package — keeping every CLI error on main's single exit path (and
// making flag errors testable). The -h/-help pseudo-error is translated
// by main.
func newFlagSet(name string) *flag.FlagSet {
	return flag.NewFlagSet(name, flag.ContinueOnError)
}

// usageError marks a flag-parse failure: the flag set has already printed
// the message and usage text, so main must not print it again, and the
// historical usage-error exit code is 2 (what flag.ExitOnError used).
type usageError struct{ err error }

func (u usageError) Error() string { return u.err.Error() }
func (u usageError) Unwrap() error { return u.err }

// parseFlags parses args, tagging failures as usage errors.
func parseFlags(fs *flag.FlagSet, args []string) error {
	if err := fs.Parse(args); err != nil {
		return usageError{err}
	}
	return nil
}

// validSigma rejects non-positive and non-finite noise levels at the CLI
// boundary: deep inside the attacks a σ of 0 only surfaces as a cryptic
// covariance/inversion failure, and a NaN would silently poison every
// estimate.
func validSigma(cmd string, sigma float64) error {
	if !(sigma > 0) || math.IsInf(sigma, 0) {
		return fmt.Errorf("%s: -sigma must be a positive finite number, got %v", cmd, sigma)
	}
	return nil
}

// loadTable reads a CSV table from path.
func loadTable(path string) (*dataset.Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dataset.ReadCSV(f)
}

// withOutput runs fn on the output stream for path ("-" is stdout),
// creating and closing the file as needed.
func withOutput(path string, fn func(io.Writer) error) error {
	if path == "-" {
		return fn(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// saveTable writes a CSV table to path (stdout when path is "-").
func saveTable(t *dataset.Table, path string) error {
	return withOutput(path, t.WriteCSV)
}

// noiseShapeFromCov is core.NoiseShapeFromCov with the CLI remedy
// appended to the diagnostic.
func noiseShapeFromCov(covY *mat.Dense, sigma2 float64) (*mat.Dense, error) {
	shaped, err := core.NoiseShapeFromCov(covY, sigma2)
	if err != nil {
		return nil, fmt.Errorf("attack: %w; rerun without -correlated", err)
	}
	return shaped, nil
}

func runGen(args []string) error {
	fs := newFlagSet("gen")
	n := fs.Int("n", 1000, "number of records")
	m := fs.Int("m", 20, "number of attributes")
	p := fs.Int("p", 3, "number of principal components")
	principal := fs.Float64("principal", 400, "principal eigenvalue")
	tail := fs.Float64("tail", 4, "non-principal eigenvalue")
	seed := fs.Int64("seed", 1, "random seed")
	out := fs.String("out", "-", "output CSV path ('-' for stdout)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	spec := synth.Spectrum{M: *m, P: *p, Principal: *principal, Tail: *tail}
	vals, err := spec.Values()
	if err != nil {
		return err
	}
	ds, err := synth.Generate(*n, vals, nil, rand.New(rand.NewSource(*seed)))
	if err != nil {
		return err
	}
	tbl, err := dataset.New(nil, ds.X)
	if err != nil {
		return err
	}
	return saveTable(tbl, *out)
}

func runPerturb(args []string) error {
	fs := newFlagSet("perturb")
	in := fs.String("in", "", "input CSV path (required)")
	out := fs.String("out", "-", "output CSV path ('-' for stdout)")
	sigma := fs.Float64("sigma", 5, "noise standard deviation")
	correlated := fs.Bool("correlated", false, "use the improved correlated-noise scheme")
	seed := fs.Int64("seed", 1, "random seed")
	streaming := fs.Bool("stream", false, "out-of-core mode: never load the full data set")
	chunk := fs.Int("chunk", 4096, "rows per chunk in -stream mode")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("perturb: -in is required")
	}
	if err := validSigma("perturb", *sigma); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	if *streaming {
		return perturbStreaming(*in, *out, *sigma, *correlated, *chunk, rng)
	}
	tbl, err := loadTable(*in)
	if err != nil {
		return err
	}
	var scheme randomize.Scheme
	if *correlated {
		cov := stat.CovarianceMatrix(tbl.Data())
		c, err := randomize.NewCorrelatedLike(cov, *sigma**sigma)
		if err != nil {
			return err
		}
		scheme = c
	} else {
		scheme = randomize.NewAdditiveGaussian(*sigma)
	}
	pert, err := scheme.Perturb(tbl.Data(), rng)
	if err != nil {
		return err
	}
	outTbl, err := dataset.New(tbl.Names(), pert.Y)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "perturbed with %s\n", scheme.Describe())
	return saveTable(outTbl, *out)
}

// perturbStreaming disguises a CSV without ever materializing it: the
// additive scheme is a single noising pass; the correlated scheme first
// sketches the data's covariance (pass 1, parallel workers, chunk-order
// merge) and then noises in a second pass. With the same seed the
// additive output is bit-identical to the in-memory path; the correlated
// output matches only up to covariance-estimation rounding (~1e-14
// relative), because Σr's Cholesky factor is built from the chunk-merged
// sketch rather than the in-memory Gram.
func perturbStreaming(in, out string, sigma float64, correlated bool, chunk int, rng *rand.Rand) error {
	if chunk < 1 {
		return fmt.Errorf("perturb: -chunk must be >= 1, got %d", chunk)
	}
	src, err := dataset.OpenCSVChunks(in, chunk)
	if err != nil {
		return err
	}
	defer src.Close()
	var scheme randomize.StreamScheme
	if correlated {
		mo, err := stream.Accumulate(src, 0)
		if err != nil {
			return fmt.Errorf("perturb: covariance pass: %w", err)
		}
		c, err := randomize.NewCorrelatedLike(mo.Covariance(), sigma*sigma)
		if err != nil {
			return err
		}
		scheme = c
	} else {
		scheme = randomize.NewAdditiveGaussian(sigma)
	}
	return withOutput(out, func(w io.Writer) error {
		cw, err := dataset.NewChunkWriter(w, src.Names())
		if err != nil {
			return err
		}
		if err := scheme.PerturbStream(src, cw, rng); err != nil {
			return err
		}
		if err := cw.Flush(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "perturbed %d rows with %s (streaming, %d-row chunks)\n",
			cw.Rows(), scheme.Describe(), chunk)
		return nil
	})
}

func runAttack(args []string) error {
	fs := newFlagSet("attack")
	originalPath := fs.String("original", "", "ground-truth CSV path (required)")
	disguisedPath := fs.String("disguised", "", "disguised CSV path (required)")
	sigma := fs.Float64("sigma", 5, "noise standard deviation assumed by the attacks")
	correlated := fs.Bool("correlated", false, "attack assuming correlated noise shaped like the disguised data")
	streaming := fs.Bool("stream", false, "out-of-core mode: two-pass NDR/PCA-DR/BE-DR, never loading the full data sets")
	chunk := fs.Int("chunk", 4096, "rows per chunk in -stream mode")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *originalPath == "" || *disguisedPath == "" {
		return fmt.Errorf("attack: -original and -disguised are required")
	}
	if err := validSigma("attack", *sigma); err != nil {
		return err
	}
	sigma2 := *sigma * *sigma
	if *streaming {
		return attackStreaming(*originalPath, *disguisedPath, sigma2, *correlated, *chunk)
	}
	orig, err := loadTable(*originalPath)
	if err != nil {
		return err
	}
	disg, err := loadTable(*disguisedPath)
	if err != nil {
		return err
	}
	attacks := core.StandardAttacks(sigma2)
	desc := fmt.Sprintf("additive noise, σ=%.4g (assumed)", *sigma)
	if *correlated {
		// Without the publisher's Σr, the best adversary model is the
		// disguised data's own correlation shape at the stated energy.
		noiseCov, err := noiseShapeFromCov(stat.CovarianceMatrix(disg.Data()), sigma2)
		if err != nil {
			return err
		}
		attacks = core.CorrelatedNoiseAttacks(noiseCov, nil)
		desc = fmt.Sprintf("correlated noise, avg σ²=%.4g (assumed, shape from disguised data)", sigma2)
	}
	report, err := core.Evaluate(orig.Data(), disg.Data(), desc, attacks)
	if err != nil {
		return err
	}
	fmt.Print(report)
	return nil
}

// attackStreaming runs the streamable attack suite (NDR baseline plus
// PCA-DR and BE-DR) over chunked CSV sources. UDR and SF need the full
// data resident and are skipped; the report notes the mode.
func attackStreaming(originalPath, disguisedPath string, sigma2 float64, correlated bool, chunk int) error {
	if chunk < 1 {
		return fmt.Errorf("attack: -chunk must be >= 1, got %d", chunk)
	}
	origSrc, err := dataset.OpenCSVChunks(originalPath, chunk)
	if err != nil {
		return err
	}
	defer origSrc.Close()
	disgSrc, err := dataset.OpenCSVChunks(disguisedPath, chunk)
	if err != nil {
		return err
	}
	defer disgSrc.Close()

	var attacks []recon.StreamReconstructor
	var desc string
	if correlated {
		// Extra sketch pass to shape the assumed noise covariance.
		mo, err := stream.Accumulate(disgSrc, 0)
		if err != nil {
			return fmt.Errorf("attack: covariance pass: %w", err)
		}
		noiseCov, err := noiseShapeFromCov(mo.Covariance(), sigma2)
		if err != nil {
			return err
		}
		attacks = []recon.StreamReconstructor{
			recon.NewPCADR(sigma2),
			recon.NewBEDRCorrelated(noiseCov, nil),
		}
		desc = fmt.Sprintf("correlated noise, avg σ²=%.4g (assumed, shape from disguised data; streaming, %d-row chunks)", sigma2, chunk)
	} else {
		attacks = []recon.StreamReconstructor{
			recon.NewPCADR(sigma2),
			recon.NewBEDR(sigma2),
		}
		desc = fmt.Sprintf("additive noise, σ²=%.4g (assumed; streaming, %d-row chunks)", sigma2, chunk)
	}
	fmt.Fprintln(os.Stderr, "streaming mode: running NDR/PCA-DR/BE-DR (UDR and SF require the full data in memory)")
	report, err := core.EvaluateStream(origSrc, disgSrc, desc, attacks)
	if err != nil {
		return err
	}
	fmt.Print(report)
	return nil
}

// parseSweep splits a comma-separated list of numbers.
func parseSweep(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, field := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(field), 64)
		if err != nil {
			return nil, fmt.Errorf("bad sweep value %q: %w", field, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func toInts(vals []float64) []int {
	out := make([]int, len(vals))
	for i, v := range vals {
		out[i] = int(v)
	}
	return out
}

func runExperiment(args []string) error {
	fs := newFlagSet("experiment")
	id := fs.Int("id", 1, "figure number to regenerate (1-4)")
	n := fs.Int("n", 1000, "records per sweep point")
	sigma := fs.Float64("sigma", 5, "noise standard deviation")
	seed := fs.Int64("seed", 2005, "random seed")
	skipUDR := fs.Bool("skip-udr", false, "skip the UDR series (much faster at m=100)")
	csvPath := fs.String("csv", "", "also write the figure as CSV to this path")
	sweep := fs.String("sweep", "", "comma-separated sweep values overriding the paper defaults (m for fig 1, p for fig 2, tail λ for fig 3, path t for fig 4)")
	workers := fs.Int("workers", 0, "sweep-point worker pool size (0 = all cores); results are identical at any setting")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	sweepVals, err := parseSweep(*sweep)
	if err != nil {
		return fmt.Errorf("experiment: %w", err)
	}
	cfg := experiment.Config{N: *n, Sigma2: *sigma * *sigma, Seed: *seed, SkipUDR: *skipUDR, Workers: *workers}

	writeCSV := func(fig *experiment.Figure) error {
		if *csvPath == "" {
			return nil
		}
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		return fig.WriteCSV(f)
	}

	switch *id {
	case 1:
		fig, err := experiment.Experiment1(cfg, toInts(sweepVals))
		if err != nil {
			return err
		}
		fmt.Print(fig)
		return writeCSV(fig)
	case 2:
		fig, err := experiment.Experiment2(cfg, toInts(sweepVals))
		if err != nil {
			return err
		}
		fmt.Print(fig)
		return writeCSV(fig)
	case 3:
		fig, err := experiment.Experiment3(cfg, sweepVals)
		if err != nil {
			return err
		}
		fmt.Print(fig)
		return writeCSV(fig)
	case 4:
		fig, err := experiment.Experiment4(cfg, sweepVals)
		if err != nil {
			return err
		}
		fmt.Print(fig)
		if *csvPath != "" {
			return fmt.Errorf("experiment: -csv is not supported for figure 4 (two x columns); copy the text output")
		}
		return nil
	default:
		return fmt.Errorf("experiment: -id must be 1-4, got %d", *id)
	}
}

// runSmooth applies the sample-dependency (time-series) attack to every
// column of a disguised CSV and writes the smoothed reconstruction.
func runSmooth(args []string) error {
	fs := newFlagSet("smooth")
	in := fs.String("in", "", "disguised CSV path (required); rows are time steps")
	out := fs.String("out", "-", "output CSV path ('-' for stdout)")
	sigma := fs.Float64("sigma", 5, "noise standard deviation")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("smooth: -in is required")
	}
	tbl, err := loadTable(*in)
	if err != nil {
		return err
	}
	n, m := tbl.Dims()
	sigma2 := *sigma * *sigma
	result := mat.Zeros(n, m)
	for j, name := range tbl.Names() {
		col, err := tbl.Column(name)
		if err != nil {
			return err
		}
		smoothed, model, err := tseries.Reconstruct(col, sigma2)
		if err != nil {
			return fmt.Errorf("smooth: column %q: %w", name, err)
		}
		result.SetCol(j, smoothed)
		fmt.Fprintf(os.Stderr, "column %-12s AR(1): φ=%.3f innovation=%.3f mean=%.3f\n",
			name, model.Phi, model.Q, model.C)
	}
	outTbl, err := dataset.New(tbl.Names(), result)
	if err != nil {
		return err
	}
	return saveTable(outTbl, *out)
}

func runUtility(args []string) error {
	fs := newFlagSet("utility")
	n := fs.Int("n", 2000, "number of records")
	m := fs.Int("m", 20, "number of attributes")
	sigma := fs.Float64("sigma", 5, "noise standard deviation")
	seed := fs.Int64("seed", 2005, "random seed")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	cfg := experiment.Config{N: *n, Sigma2: *sigma * *sigma, Seed: *seed}
	res, err := experiment.UtilityExperiment(cfg, *m, rand.New(rand.NewSource(*seed)))
	if err != nil {
		return err
	}
	fmt.Println(res)
	return nil
}
