// Command randprivd serves the privacy-assessment pipeline over HTTP:
// the "assess privacy before you publish" loop of Huang, Du & Chen
// (SIGMOD 2005), offered as a long-running service instead of a one-shot
// CLI.
//
// Usage:
//
//	randprivd [-addr :8080] [-workers N] [-queue 64] [-max-body 1073741824]
//	          [-timeout 60s] [-cache 128] [-chunk 4096] [-spool DIR]
//	          [-jobs-dir DIR] [-job-workers N] [-job-queue 64] [-job-ttl 24h]
//	          [-sweep-max-points 4096]
//	          [-cluster-dir DIR] [-node-id ID] [-role coordinator|worker]
//	          [-cluster-workers N]
//
// With -cluster-dir, several randprivd processes sharing one state
// directory form a cluster. The default -role coordinator serves the
// full HTTP API and delegates work to the shared task queue: plain
// assessment jobs, the sketch and score passes of large streamed
// assessments, and multipart sweeps partitioned at perturbation-group
// boundaries so each worker runs one disguise pass end-to-end.
// -role worker serves only /healthz and /v1/status and spends its
// capacity claiming and executing tasks. Workers that crash mid-task
// lose their lease after the heartbeat TTL and the work re-runs
// elsewhere, to byte-identical results.
//
// Endpoints (see docs/API.md for the full reference):
//
//	POST /v1/perturb?sigma=5&seed=1&scheme=additive|correlated   CSV -> CSV
//	POST /v1/attack?sigma=5&attack=ndr|pcadr|bedr[&correlated=1] CSV -> CSV
//	POST /v1/assess?sigma=5&seed=1&scheme=...[&stream=1]         CSV -> JSON
//	POST   /v1/jobs?sigma=5&seed=1&scheme=...[&stream=1]         CSV -> job id
//	POST   /v1/jobs  (multipart: spec + data)                    sweep -> job id
//	GET    /v1/jobs[?state=...&limit=N&cursor=...]               listing JSON
//	GET    /v1/jobs/{id}                                         status JSON
//	GET    /v1/jobs/{id}/result                                  report JSON
//	DELETE /v1/jobs/{id}                                         cancel/remove
//	GET  /healthz                                                liveness
//	GET  /v1/status                                              gauges
//	GET  /v1/schemes
//
// Jobs submitted to /v1/jobs persist their spec and upload under
// -jobs-dir; a restarted server re-runs any job the previous process
// left queued or running, to byte-identical results. A multipart
// submission carries a JSON sweep spec whose parameter grid is compiled
// into a shared-scan plan; -sweep-max-points bounds how large a grid
// one spec may request.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"randpriv/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		fmt.Fprintf(os.Stderr, "randprivd: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("randprivd", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "compute pool size (0 = all cores)")
	queue := fs.Int("queue", 64, "max queued requests beyond the running ones (overload returns 429)")
	maxBody := fs.Int64("max-body", 1<<30, "max upload size in bytes (beyond returns 413)")
	timeout := fs.Duration("timeout", 60*time.Second, "per-request deadline covering queue wait and compute")
	cache := fs.Int("cache", 128, "assessment LRU cache entries (negative disables)")
	chunk := fs.Int("chunk", 4096, "default streaming chunk rows (?chunk= overrides)")
	spool := fs.String("spool", "", "spool directory for uploaded bodies (default: system temp dir)")
	jobsDir := fs.String("jobs-dir", "", "async-job state directory; jobs here survive restarts (default: <tmp>/randprivd-jobs)")
	jobWorkers := fs.Int("job-workers", 0, "background job pool size, separate from -workers (0 = half the cores)")
	jobQueue := fs.Int("job-queue", 64, "max jobs queued beyond the running ones before POST /v1/jobs returns 429")
	jobTTL := fs.Duration("job-ttl", 24*time.Hour, "retention of finished jobs and their results (negative keeps forever)")
	sweepMax := fs.Int("sweep-max-points", 4096, "max grid points one sweep spec may expand to (negative removes the cap)")
	clusterDir := fs.String("cluster-dir", "", "shared cluster state directory; empty runs single-process")
	nodeID := fs.String("node-id", "", "this process's cluster identity (default: hostname-pid)")
	role := fs.String("role", "coordinator", "cluster role: coordinator serves the API, worker only executes tasks")
	clusterWorkers := fs.Int("cluster-workers", 0, "claim loops this node runs (0 = 1; coordinator: negative = none)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	logger := log.New(os.Stderr, "", log.LstdFlags)
	// Reject nonsense values at startup instead of letting a typo run a
	// misconfigured daemon. Negative values that mean something stay
	// legal: -job-ttl < 0 keeps jobs forever, and a coordinator's
	// -cluster-workers < 0 disables its embedded claim loops.
	if *timeout <= 0 {
		return fmt.Errorf("-timeout must be positive, got %v", *timeout)
	}
	if *queue < 0 {
		return fmt.Errorf("-queue must be >= 0, got %d", *queue)
	}
	if *jobTTL == 0 {
		return fmt.Errorf("-job-ttl must be nonzero (positive expires finished jobs, negative keeps them forever)")
	}
	if *role != "coordinator" && *role != "worker" {
		return fmt.Errorf("unknown -role %q (want coordinator or worker)", *role)
	}
	if *role == "worker" {
		if *clusterDir == "" {
			return fmt.Errorf("-role worker requires -cluster-dir")
		}
		if *clusterWorkers < 0 {
			return fmt.Errorf("-cluster-workers must be >= 0 for -role worker, got %d (a worker without claim loops does nothing)", *clusterWorkers)
		}
		return runWorker(*addr, *clusterDir, *nodeID, *clusterWorkers, *chunk, *spool, *timeout, logger)
	}
	srv, err := server.New(server.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		MaxBodyBytes:   *maxBody,
		RequestTimeout: *timeout,
		CacheEntries:   *cache,
		ChunkRows:      *chunk,
		SpoolDir:       *spool,
		JobsDir:        *jobsDir,
		JobWorkers:     *jobWorkers,
		JobQueueDepth:  *jobQueue,
		JobTTL:         *jobTTL,
		SweepMaxPoints: *sweepMax,
		ClusterDir:     *clusterDir,
		NodeID:         *nodeID,
		ClusterWorkers: *clusterWorkers,
		Log:            logger,
	})
	if err != nil {
		return err
	}
	defer srv.Close()

	httpSrv := &http.Server{
		Addr:    *addr,
		Handler: srv,
		// The handlers enforce their own compute deadline; these bound
		// the slow-client side. ReadTimeout covers the whole body, so a
		// stalled upload cannot outlive the request deadline by much.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       *timeout + 30*time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	errCh := make(chan error, 1)
	go func() {
		logger.Printf("randprivd: listening on %s", *addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case s := <-sig:
		logger.Printf("randprivd: %v, shutting down", s)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			return err
		}
		return nil
	}
}
