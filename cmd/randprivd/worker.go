// The -role worker process: no API surface beyond /healthz liveness
// and /v1/status gauges, all capacity spent claiming and executing
// cluster tasks. A worker shares
// the assessment code with the coordinator through server.Server — the
// same runner computes a delegated job here and on a coordinator's
// embedded claim loop, which is what makes results byte-identical no
// matter where they run.

package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"randpriv/internal/cluster"
	"randpriv/internal/server"
)

// workerNodeID mirrors the server's default cluster identity:
// filename-safe hostname plus pid.
func workerNodeID() string {
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "node"
	}
	var b strings.Builder
	for _, r := range host {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			b.WriteRune(r)
		default:
			b.WriteByte('-')
		}
	}
	return fmt.Sprintf("%s-%d", b.String(), os.Getpid())
}

// runWorker stands up a worker-role node: claim loops over the shared
// state directory plus a minimal /healthz.
func runWorker(addr, dir, node string, nWorkers, chunk int, spool string, timeout time.Duration, logger *log.Logger) error {
	if node == "" {
		node = workerNodeID()
	}
	if nWorkers < 1 {
		nWorkers = 1
	}
	st, err := cluster.Open(dir)
	if err != nil {
		return err
	}
	// The compute side is a full server.Server — without ClusterDir, so
	// this node never starts a coordinator of its own — with its job
	// state tucked under a node-private directory (two processes must
	// never share a jobs dir).
	srv, err := server.New(server.Config{
		ChunkRows: chunk,
		SpoolDir:  spool,
		JobsDir:   filepath.Join(dir, "node-local", node, "jobs"),
		Log:       logger,
	})
	if err != nil {
		return err
	}
	defer srv.Close()

	workers := make([]*cluster.Worker, 0, nWorkers)
	for i := 0; i < nWorkers; i++ {
		name := node
		if nWorkers > 1 {
			name = fmt.Sprintf("%s-w%d", node, i)
		}
		w, err := cluster.NewWorker(st, cluster.WorkerOptions{Node: name, Log: logger})
		if err != nil {
			return err
		}
		w.Register(cluster.TaskSketch, cluster.SketchShardRunner)
		w.Register(cluster.TaskAssess, srv.ClusterAssessRunner())
		w.Register(cluster.TaskSweepGroup, srv.ClusterSweepGroupRunner())
		w.Register(cluster.TaskScore, srv.ClusterScoreRunner())
		if err := w.Start(); err != nil {
			return err
		}
		defer w.Stop()
		workers = append(workers, w)
	}

	mux := http.NewServeMux()
	// Liveness only; the gauges live on /v1/status, mirroring the
	// coordinator's API split.
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(struct {
			Status string `json:"status"`
			Role   string `json:"role"`
		}{"ok", "worker"})
	})
	mux.HandleFunc("/v1/status", func(w http.ResponseWriter, r *http.Request) {
		var claimed, done, failed int64
		for _, wk := range workers {
			c, d, f := wk.Stats()
			claimed, done, failed = claimed+c, done+d, failed+f
		}
		pending, leased, resolved := st.QueueStats()
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(struct {
			Node         string                       `json:"node"`
			Role         string                       `json:"role"`
			ClaimLoops   int                          `json:"claim_loops"`
			TasksClaimed int64                        `json:"tasks_claimed"`
			TasksDone    int64                        `json:"tasks_done"`
			TasksFailed  int64                        `json:"tasks_failed"`
			TasksPending int                          `json:"tasks_pending"`
			TasksLeased  int                          `json:"tasks_leased"`
			TasksDoneAll int                          `json:"tasks_done_all"`
			TasksByKind  map[string]cluster.KindStats `json:"tasks_by_kind"`
		}{node, "worker", nWorkers, claimed, done, failed, pending, leased, resolved, st.QueueStatsByKind()})
	})
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       timeout,
		IdleTimeout:       2 * time.Minute,
	}
	errCh := make(chan error, 1)
	go func() {
		logger.Printf("randprivd: worker %s on %s, %d claim loops over %s", node, addr, nWorkers, dir)
		errCh <- httpSrv.ListenAndServe()
	}()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case s := <-sig:
		logger.Printf("randprivd: worker %s: %v, shutting down", node, s)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		return httpSrv.Shutdown(ctx)
	}
}
