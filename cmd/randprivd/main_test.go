package main

import (
	"strings"
	"testing"
)

// TestFlagValidation pins the startup rejection of nonsense flag values
// — and, just as deliberately, the negative values that are documented
// features and must stay accepted (they only fail later for unrelated
// reasons like a missing cluster dir, never for the sign).
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"zero timeout", []string{"-timeout", "0s"}, "-timeout must be positive"},
		{"negative timeout", []string{"-timeout", "-5s"}, "-timeout must be positive"},
		{"negative queue", []string{"-queue", "-1"}, "-queue must be >= 0"},
		{"zero job ttl", []string{"-job-ttl", "0s"}, "-job-ttl must be nonzero"},
		{"bad role", []string{"-role", "observer"}, "unknown -role"},
		{"worker without cluster dir", []string{"-role", "worker"}, "-role worker requires -cluster-dir"},
		{"worker with negative claim loops", []string{"-role", "worker", "-cluster-dir", t.TempDir(), "-cluster-workers", "-1"}, "-cluster-workers must be >= 0 for -role worker"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want error containing %q", tc.args, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("run(%v) = %v, want error containing %q", tc.args, err, tc.wantErr)
			}
		})
	}
}
