package randpriv_test

// Smoke tests that every example under examples/ actually runs to
// completion. Skipped under -short because each example does real work
// (tens of thousands of records).

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples are skipped in -short mode")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatalf("read examples dir: %v", err)
	}
	if len(entries) < 7 {
		t.Fatalf("expected at least 7 examples, found %d", len(entries))
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "./"+filepath.Join("examples", name))
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", name, err, out)
			}
			if len(out) == 0 {
				t.Errorf("example %s produced no output", name)
			}
		})
	}
}
